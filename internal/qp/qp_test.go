package qp

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// chain builds pad(0,0) — a — b — pad(10,0).
func chain(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain", geom.NewRegion(1, 1, 10))
	b.AddPad("p0", geom.Point{X: 0, Y: 0.5})
	b.AddPad("p1", geom.Point{X: 10, Y: 0.5})
	b.AddCell("a", 1, 1)
	b.AddCell("b", 1, 1)
	b.Connect("n0", "p0", "a")
	b.Connect("n1", "a", "b")
	b.Connect("n2", "b", "p1")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestChainEquilibrium(t *testing.T) {
	nl := chain(t)
	s := Build(nl, Options{})
	if s.N() != 2 {
		t.Fatalf("N = %d", s.N())
	}
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	// Equal springs: equilibrium at thirds of the span (anchor is
	// negligible at 1e-6).
	if got := nl.Cells[2].Pos.X; math.Abs(got-10.0/3) > 1e-3 {
		t.Errorf("a.x = %v, want %v", got, 10.0/3)
	}
	if got := nl.Cells[3].Pos.X; math.Abs(got-20.0/3) > 1e-3 {
		t.Errorf("b.x = %v, want %v", got, 20.0/3)
	}
	if got := nl.Cells[2].Pos.Y; math.Abs(got-0.5) > 1e-3 {
		t.Errorf("a.y = %v, want 0.5", got)
	}
}

func TestSolveMinimizesQuadraticWL(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "q", Cells: 120, Nets: 150, Rows: 6, Seed: 11})
	netgen.ScatterRandom(nl, 3)
	before := nl.QuadraticWL()
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{}); err != nil {
		t.Fatal(err)
	}
	after := nl.QuadraticWL()
	if after >= before {
		t.Errorf("quadratic WL rose: %v -> %v", before, after)
	}
	// The solution is a global optimum: any perturbation increases it.
	perturbed := nl.Clone()
	for i := range perturbed.Cells {
		if !perturbed.Cells[i].Fixed {
			perturbed.Cells[i].Pos.X += 0.1
			perturbed.Cells[i].Pos.Y -= 0.07
			break
		}
	}
	if perturbed.QuadraticWL() < after-1e-9 {
		t.Error("perturbation decreased the objective; not an optimum")
	}
}

func TestMatrixProperties(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "m", Cells: 200, Nets: 260, Rows: 8, Seed: 12})
	s := Build(nl, Options{})
	m := s.Matrix()
	if !m.IsSymmetric(1e-12) {
		t.Error("C not symmetric")
	}
	if !m.RowDiagonallyDominant(1e-9) {
		t.Error("C not diagonally dominant")
	}
	if m.N() != nl.NumMovable() {
		t.Errorf("dim %d != movable %d", m.N(), nl.NumMovable())
	}
}

func TestFixedCellsExcluded(t *testing.T) {
	nl := chain(t)
	s := Build(nl, Options{})
	if s.VarOf[0] != -1 || s.VarOf[1] != -1 {
		t.Error("pads got variables")
	}
	if s.VarOf[2] < 0 || s.VarOf[3] < 0 {
		t.Error("movable cells lack variables")
	}
	padPos := nl.Cells[0].Pos
	if _, err := s.Solve(nil, sparse.CGOptions{}); err != nil {
		t.Fatal(err)
	}
	if nl.Cells[0].Pos != padPos {
		t.Error("solve moved a fixed cell")
	}
}

func TestAdditionalForceShiftsEquilibrium(t *testing.T) {
	nl := chain(t)
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	base := nl.Cells[2].Pos
	forces := make([]geom.Point, len(nl.Cells))
	forces[2] = geom.Point{X: 0.5, Y: 0.25}
	if _, err := s.Solve(forces, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	got := nl.Cells[2].Pos
	if got.X <= base.X {
		t.Errorf("+x force moved cell from %v to %v", base, got)
	}
	if got.Y <= base.Y {
		t.Errorf("+y force did not raise cell: %v -> %v", base, got)
	}
}

func TestForceSolutionSpaceUnrestricted(t *testing.T) {
	// §2.2: any placement satisfies eq. 3 for a suitable e. Verify by
	// picking a target placement, computing e = −(C·p + d), and solving.
	nl := chain(t)
	s := Build(nl, Options{})
	target := []geom.Point{{X: 2, Y: 0.2}, {X: 9, Y: 0.9}}
	// e must equal C·p + d at the target for equilibrium; our Solve takes
	// f with C·p = −d + f, so f = C·p + d.
	n := s.N()
	px := []float64{target[0].X, target[1].X}
	py := []float64{target[0].Y, target[1].Y}
	fx := make([]float64, n)
	fy := make([]float64, n)
	s.C.MulVec(fx, px)
	s.C.MulVec(fy, py)
	forces := make([]geom.Point, len(nl.Cells))
	for vi, ci := range s.CellOf {
		forces[ci] = geom.Point{X: fx[vi] + s.Dx[vi], Y: fy[vi] + s.Dy[vi]}
	}
	if _, err := s.Solve(forces, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	for vi, ci := range s.CellOf {
		if nl.Cells[ci].Pos.Dist(target[vi]) > 1e-4 {
			t.Errorf("cell %d at %v, want %v", ci, nl.Cells[ci].Pos, target[vi])
		}
	}
}

func TestPinOffsetsShiftSolution(t *testing.T) {
	// One movable cell between two pads, with an offset pin toward one pad:
	// the cell body must shift to compensate.
	b := netlist.NewBuilder("off", geom.NewRegion(1, 1, 10))
	b.AddPad("p0", geom.Point{X: 0, Y: 0.5})
	b.AddPad("p1", geom.Point{X: 10, Y: 0.5})
	b.AddCell("a", 2, 1)
	ia := b.Cell("a")
	b.AddNet("n0", []netlist.Pin{{Cell: 0, Dir: netlist.Output}, {Cell: ia, Offset: geom.Point{X: -1, Y: 0}, Dir: netlist.Input}})
	b.AddNet("n1", []netlist.Pin{{Cell: ia, Offset: geom.Point{X: 1, Y: 0}, Dir: netlist.Output}, {Cell: 1, Dir: netlist.Input}})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	// Symmetric: center lands mid-span with both pin wires equal length.
	if got := nl.Cells[2].Pos.X; math.Abs(got-5) > 1e-3 {
		t.Errorf("center = %v, want 5", got)
	}

	// Now make the left net heavier: cell shifts left, and the pin offset
	// keeps the effective wire shorter than body-center distance.
	nl.Nets[0].Weight = 4
	s = Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if got := nl.Cells[2].Pos.X; got >= 5 {
		t.Errorf("weighted solve did not shift left: %v", got)
	}
}

func TestLinearizeApproximatesLinearObjective(t *testing.T) {
	// With linearization, a star of one cell pulled by three pads should
	// move toward the median rather than the mean.
	b := netlist.NewBuilder("lin", geom.Region{Outline: geom.NewRect(0, 0, 30, 30)})
	b.AddPad("p0", geom.Point{X: 0, Y: 15})
	b.AddPad("p1", geom.Point{X: 1, Y: 15})
	b.AddPad("p2", geom.Point{X: 30, Y: 15})
	b.AddCell("a", 1, 1)
	b.Connect("n0", "p0", "a")
	b.Connect("n1", "p1", "a")
	b.Connect("n2", "p2", "a")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Quadratic solution: mean ≈ (0+1+30)/3 ≈ 10.33.
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	quad := nl.Cells[3].Pos.X

	// Iterated linearized solves drift toward the median (x≈1).
	for it := 0; it < 15; it++ {
		s = Build(nl, Options{Linearize: true, MinDist: 0.1})
		if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
			t.Fatal(err)
		}
	}
	lin := nl.Cells[3].Pos.X
	if lin >= quad-1 {
		t.Errorf("linearized x = %v not clearly below quadratic %v", lin, quad)
	}
}

func TestEmptyAndDisconnected(t *testing.T) {
	// A netlist with no movable cells must solve trivially.
	b := netlist.NewBuilder("fixedonly", geom.NewRegion(1, 1, 10))
	b.AddPad("p0", geom.Point{X: 0, Y: 0})
	b.AddPad("p1", geom.Point{X: 10, Y: 0})
	b.Connect("n", "p0", "p1")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{}); err != nil {
		t.Fatal(err)
	}

	// A floating component (no fixed connection) still solves thanks to
	// the anchor, landing at the region center.
	b2 := netlist.NewBuilder("float", geom.NewRegion(1, 1, 10))
	b2.AddCell("a", 1, 1)
	b2.AddCell("b", 1, 1)
	b2.Connect("n", "a", "b")
	nl2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	s2 := Build(nl2, Options{})
	if _, err := s2.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	c := nl2.Region.Outline.Center()
	if nl2.Cells[0].Pos.Dist(c) > 1e-3 {
		t.Errorf("floating cells at %v, want center %v", nl2.Cells[0].Pos, c)
	}
}

func TestWarmStartUsesCurrentPositions(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "w", Cells: 400, Nets: 520, Rows: 10, Seed: 13})
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{}); err != nil {
		t.Fatal(err)
	}
	// Re-solving from the solution should converge almost immediately.
	res, err := s.Solve(nil, sparse.CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Iterations > 3 || res.Y.Iterations > 3 {
		t.Errorf("warm re-solve took %d/%d iterations", res.X.Iterations, res.Y.Iterations)
	}
}

func TestSolveResidualReactsToWeightChange(t *testing.T) {
	// Re-weighting a net and solving the residual pulls its cells together
	// even with no external force — the property SolveDelta lacks.
	nl := chain(t)
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	gap := nl.Cells[3].Pos.X - nl.Cells[2].Pos.X

	nl.Nets[1].Weight = 10 // the a—b net
	s2 := Build(nl, Options{})
	if _, err := s2.SolveResidual(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	newGap := nl.Cells[3].Pos.X - nl.Cells[2].Pos.X
	if newGap >= gap {
		t.Errorf("residual solve did not contract the heavy net: %v -> %v", gap, newGap)
	}

	// At equilibrium the residual solve is a no-op.
	before := nl.Snapshot()
	if _, err := s2.SolveResidual(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if d := netlist.MaxDisplacement(before, nl.Snapshot()); d > 1e-6 {
		t.Errorf("residual solve at equilibrium moved cells by %v", d)
	}
}

func TestSolveResidualWithForces(t *testing.T) {
	nl := chain(t)
	s := Build(nl, Options{})
	if _, err := s.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	base := nl.Cells[2].Pos
	forces := make([]geom.Point, len(nl.Cells))
	forces[2] = geom.Point{X: 1, Y: 0}
	if _, err := s.SolveResidual(forces, sparse.CGOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if nl.Cells[2].Pos.X <= base.X {
		t.Error("force did not move the cell under residual solve")
	}
}
