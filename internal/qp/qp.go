// Package qp assembles and solves the paper's quadratic placement system
// (§2): the clique net model yields a symmetric positive-definite matrix C
// and vectors d (x and y parts), and additional forces e extend the
// equilibrium condition to C·p + d + e = 0 (eq. 3). The net-weight
// linearization of [14] (Sigl/Doll/Johannes, DAC'91) is applied optionally.
package qp

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obsv"
	"repro/internal/par"
	"repro/internal/sparse"
)

// NetModel selects how a multi-pin net maps onto two-pin springs.
type NetModel int

const (
	// Clique is the paper's model (§2.1): k(k−1)/2 edges of weight w/k.
	Clique NetModel = iota
	// Star connects every pin to the net's centroid, treated as a fixed
	// point of the current placement and refreshed on every rebuild (a
	// quasi-static star: no extra variable enters the system). O(k) edges,
	// useful for designs with wide nets.
	Star
	// Hybrid uses Clique for nets up to HybridThreshold pins and Star
	// above, the usual practical compromise.
	Hybrid
)

// String names the model for logs and flags.
func (m NetModel) String() string {
	switch m {
	case Star:
		return "star"
	case Hybrid:
		return "hybrid"
	default:
		return "clique"
	}
}

// ParseNetModel maps a flag/JSON value to a NetModel. The empty string is
// the zero model (Clique), so an omitted field means the paper's default.
func ParseNetModel(s string) (NetModel, bool) {
	switch s {
	case "clique", "":
		return Clique, true
	case "star":
		return Star, true
	case "hybrid":
		return Hybrid, true
	default:
		return Clique, false
	}
}

// Options controls system assembly.
type Options struct {
	// Linearize divides each clique edge weight by the current pin-to-pin
	// distance (clamped below by MinDist), so successive solves approximate
	// a linear wire-length objective [14].
	Linearize bool
	// MinDist is the linearization distance clamp. Defaults to 1 layout
	// unit (one row height).
	MinDist float64
	// Anchor adds a tiny spring from every movable cell to the region
	// center so components with no fixed connection still have a unique
	// solution. Defaults to 1e-6 of the average connectivity.
	Anchor float64
	// Model selects the net decomposition (default Clique, the paper's).
	Model NetModel
	// HybridThreshold is the pin count above which Hybrid switches to the
	// star model. Defaults to 10.
	HybridThreshold int
}

// System is the assembled placement problem for one netlist.
type System struct {
	nl *netlist.Netlist
	// VarOf maps cell index → variable index, −1 for fixed cells.
	VarOf []int
	// CellOf maps variable index → cell index.
	CellOf []int

	C      *sparse.CSR
	Dx, Dy []float64

	// bx/by are SolveDeltaFrom's right-hand-side scratch, reused across
	// transformations so the steady-state solve allocates nothing.
	bx, by []float64

	// chol caches the IC0 preconditioner across the solves of one
	// assembly: the pattern is built once per System (it is fixed by C's
	// sparsity), the numeric factor is recomputed lazily after each
	// assembleInto, and both axis solves share it read-only. cholBroken
	// remembers a pivot breakdown for the current values, so the
	// Jacobi fallback is decided once per assembly, not per solve.
	chol       *sparse.IC0Factor
	cholDirty  bool
	cholBroken bool

	opts Options
}

// Build assembles the system from the netlist's current state (weights,
// and — when linearizing — current positions). Iterative callers that
// rebuild the same netlist repeatedly should hold an Assembler instead,
// which caches the sparsity pattern and storage between assemblies.
func Build(nl *netlist.Netlist, opts Options) *System {
	s := newSkeleton(nl, normalize(opts))
	b := sparse.NewBuilder(s.N())
	s.assembleInto(b)
	s.C = b.Build()
	return s
}

// normalize fills Options defaults.
func normalize(opts Options) Options {
	if opts.MinDist <= 0 {
		opts.MinDist = 1
	}
	if opts.HybridThreshold <= 0 {
		opts.HybridThreshold = 10
	}
	return opts
}

// newSkeleton allocates the structural half of a system: the cell/variable
// maps and the d vectors. Valid until the netlist's cell or fixed-flag set
// changes.
func newSkeleton(nl *netlist.Netlist, opts Options) *System {
	s := &System{nl: nl, opts: opts}
	s.VarOf = make([]int, len(nl.Cells))
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			s.VarOf[i] = -1
		} else {
			s.VarOf[i] = len(s.CellOf)
			s.CellOf = append(s.CellOf, i)
		}
	}
	n := len(s.CellOf)
	s.Dx = make([]float64, n)
	s.Dy = make([]float64, n)
	return s
}

// assembleInto zeroes d and accumulates every net plus the anchor springs
// into b. The triplet insertion sequence is fully determined by the netlist
// topology and the model options — never by weights or positions — which is
// what lets Assembler replay it against a cached sparsity pattern.
func (s *System) assembleInto(b *sparse.Builder) {
	nl := s.nl
	s.cholDirty = true // values change; the cached factor must refresh
	s.cholBroken = false
	for vi := range s.Dx {
		s.Dx[vi] = 0
		s.Dy[vi] = 0
	}
	totalW := 0.0
	for ni := range nl.Nets {
		totalW += s.assembleNet(b, ni)
	}

	// Anchor springs to the region center keep C strictly positive
	// definite even for floating components, and bound the displacement
	// response of isolated cell islands to external forces.
	anchor := s.opts.Anchor
	if anchor <= 0 {
		anchor = 1e-4 * (totalW/float64(maxInt(len(s.CellOf), 1)) + 1)
	}
	c := nl.Region.Outline.Center()
	for vi := range s.CellOf {
		b.Add(vi, vi, anchor)
		s.Dx[vi] -= anchor * c.X
		s.Dy[vi] -= anchor * c.Y
	}
}

// assembleNet adds net ni under the selected model and returns the summed
// edge weight (for anchor scaling).
func (s *System) assembleNet(b *sparse.Builder, ni int) float64 {
	nl := s.nl
	net := &nl.Nets[ni]
	k := len(net.Pins)
	if k < 2 {
		return 0
	}
	useStar := s.opts.Model == Star && k > 2 ||
		s.opts.Model == Hybrid && k > s.opts.HybridThreshold
	if useStar {
		return s.assembleStar(b, ni)
	}
	base := net.Weight / float64(k)
	var total float64
	for i := 0; i < k; i++ {
		pi := net.Pins[i]
		for j := i + 1; j < k; j++ {
			pj := net.Pins[j]
			w := base
			if s.opts.Linearize {
				d := nl.PinPos(pi).Dist(nl.PinPos(pj))
				if d < s.opts.MinDist {
					d = s.opts.MinDist
				}
				w /= d
			}
			total += w
			s.assembleEdge(b, pi, pj, w)
		}
	}
	return total
}

// assembleStar connects each pin to the net's current centroid with weight
// w·k/(k−1), the scaling under which the star and clique models produce
// identical forces at the centroid-consistent state. The centroid is a
// quasi-static fixed point refreshed on every rebuild, so no extra
// variable enters the system.
func (s *System) assembleStar(b *sparse.Builder, ni int) float64 {
	nl := s.nl
	net := &nl.Nets[ni]
	k := len(net.Pins)
	var centroid geom.Point
	for _, p := range net.Pins {
		centroid = centroid.Add(nl.PinPos(p))
	}
	centroid = centroid.Scale(1 / float64(k))

	base := net.Weight * float64(k) / float64(k-1) / float64(k)
	var total float64
	for _, p := range net.Pins {
		vi := s.VarOf[p.Cell]
		if vi < 0 {
			continue
		}
		w := base
		if s.opts.Linearize {
			d := nl.PinPos(p).Dist(centroid)
			if d < s.opts.MinDist {
				d = s.opts.MinDist
			}
			w /= d
		}
		total += w
		// Spring from the pin to the fixed centroid point.
		b.Add(vi, vi, w)
		s.Dx[vi] += w * (p.Offset.X - centroid.X)
		s.Dy[vi] += w * (p.Offset.Y - centroid.Y)
	}
	return total
}

// assembleEdge adds one weighted spring between two pins. Each pin is
// cellPos + offset; offsets fold into the linear term, fixed cells fold
// entirely into it.
func (s *System) assembleEdge(b *sparse.Builder, pa, pb netlist.Pin, w float64) {
	nl := s.nl
	va, vb := s.VarOf[pa.Cell], s.VarOf[pb.Cell]
	switch {
	case va >= 0 && vb >= 0:
		b.Add(va, va, w)
		b.Add(vb, vb, w)
		b.AddSym(va, vb, -w)
		// Cost w((xa+oa)−(xb+ob))²; the offset difference shifts d.
		ox := pa.Offset.X - pb.Offset.X
		oy := pa.Offset.Y - pb.Offset.Y
		s.Dx[va] += w * ox
		s.Dx[vb] -= w * ox
		s.Dy[va] += w * oy
		s.Dy[vb] -= w * oy
	case va >= 0:
		p := nl.PinPos(pb) // absolute fixed pin position
		b.Add(va, va, w)
		s.Dx[va] += w * (pa.Offset.X - p.X)
		s.Dy[va] += w * (pa.Offset.Y - p.Y)
	case vb >= 0:
		p := nl.PinPos(pa)
		b.Add(vb, vb, w)
		s.Dx[vb] += w * (pb.Offset.X - p.X)
		s.Dy[vb] += w * (pb.Offset.Y - p.Y)
	}
}

// N returns the number of movable variables per axis.
func (s *System) N() int { return len(s.CellOf) }

// Matrix exposes the assembled matrix C (shared by the x and y systems).
func (s *System) Matrix() *sparse.CSR { return s.C }

// SolveResult reports both axis solves.
type SolveResult struct {
	X, Y sparse.CGResult
	// PairWall is the wall time of the concurrent x/y solve pair —
	// smaller than X.Elapsed + Y.Elapsed whenever the axes overlap, and
	// the number that actually bounds the step time.
	PairWall time.Duration
}

// Solve computes the equilibrium C·p + d + e = 0 and writes the resulting
// positions into the netlist. forces is the per-cell additional force
// (indexed like nl.Cells; fixed entries ignored); nil means no additional
// force. Current positions are used as the CG warm start.
func (s *System) Solve(forces []geom.Point, opt sparse.CGOptions) (SolveResult, error) {
	nl := s.nl
	n := s.N()
	if n == 0 {
		return SolveResult{}, nil
	}
	bx := make([]float64, n)
	by := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for vi, ci := range s.CellOf {
		// A positive force f on a cell shifts its equilibrium along f:
		// row i of C·p = −d + f.
		bx[vi] = -s.Dx[vi]
		by[vi] = -s.Dy[vi]
		if forces != nil {
			bx[vi] += forces[ci].X
			by[vi] += forces[ci].Y
		}
		x[vi] = nl.Cells[ci].Pos.X
		y[vi] = nl.Cells[ci].Pos.Y
	}
	var out SolveResult
	errX, errY := s.solveBoth(x, bx, y, by, opt, &out)
	for vi, ci := range s.CellOf {
		nl.Cells[ci].Pos = geom.Point{X: x[vi], Y: y[vi]}
	}
	if errX != nil {
		return out, fmt.Errorf("qp: x solve: %w", errX)
	}
	if errY != nil {
		return out, fmt.Errorf("qp: y solve: %w", errY)
	}
	return out, nil
}

// solveBoth runs the two independent axis solves concurrently; C and the
// prepared preconditioner factor are shared read-only.
func (s *System) solveBoth(x, bx, y, by []float64, opt sparse.CGOptions, out *SolveResult) (errX, errY error) {
	s.prepPrecond(&opt)
	start := obsv.StartTimer()
	par.Pair(
		func() { out.X, errX = sparse.SolveCG(s.C, x, bx, opt) },
		func() { out.Y, errY = sparse.SolveCG(s.C, y, by, opt) },
	)
	out.PairWall = start.Elapsed()
	return errX, errY
}

// prepPrecond resolves opt's preconditioner against the cached factor:
// Auto picks by system size, an IC0 request refactors the cached pattern
// if the assembly changed since the last solve, and a pivot breakdown
// downgrades this assembly's solves to Jacobi. Factoring once here keeps
// the concurrent axis solves from each factoring, and keeps repeated
// solves of one assembly (timing-driven re-solves) at zero extra cost.
func (s *System) prepPrecond(opt *sparse.CGOptions) {
	eff := opt.Precond.Resolve(s.N())
	opt.Precond = eff
	opt.Factor = nil
	if eff != sparse.IC0 {
		return
	}
	if s.chol == nil {
		s.chol = sparse.NewIC0Pattern(s.C)
		s.cholDirty = true
	}
	if s.cholDirty {
		s.cholBroken = !s.chol.Refactor(s.C)
		s.cholDirty = false
	}
	if s.cholBroken {
		opt.Precond = sparse.Jacobi
		return
	}
	opt.Factor = s.chol
}

// SolveDelta solves C·δ = f for the displacement response to the force
// increment f and moves every movable cell by its δ. Starting each
// placement transformation from the previous equilibrium, this is exactly
// the paper's constant-force extension (eq. 3) — p_new solves
// C·p + d + e = 0 with e grown by −f — but conditioned on the increment, so
// small forces still move cells even when the absolute system is large.
func (s *System) SolveDelta(forces []geom.Point, opt sparse.CGOptions) (SolveResult, error) {
	n := s.N()
	//lint:ignore hotalloc zero-guess entry point (NoWarmStart baseline); the steady-state path is SolveDeltaFrom with caller-reused guesses
	return s.SolveDeltaFrom(forces, make([]float64, n), make([]float64, n), opt)
}

// SolveDeltaFrom is SolveDelta with an explicit CG starting guess: dx0 and
// dy0 (length N) carry a prediction of the displacement response on entry
// and the solved δ on return. Placement transformations move cells slowly
// (§4.2), so the previous transformation's response is a strong guess that
// saves CG iterations; SolveDelta is the zero-guess special case.
func (s *System) SolveDeltaFrom(forces []geom.Point, dx0, dy0 []float64, opt sparse.CGOptions) (SolveResult, error) {
	nl := s.nl
	n := s.N()
	if n == 0 {
		return SolveResult{}, nil
	}
	if len(dx0) != n || len(dy0) != n {
		panic("qp: SolveDeltaFrom guess length mismatch")
	}
	if len(s.bx) != n {
		s.bx = make([]float64, n)
		s.by = make([]float64, n)
	}
	bx, by := s.bx, s.by
	for vi, ci := range s.CellOf {
		if forces != nil {
			bx[vi] = forces[ci].X
			by[vi] = forces[ci].Y
		} else {
			bx[vi] = 0
			by[vi] = 0
		}
	}
	var out SolveResult
	errX, errY := s.solveBoth(dx0, bx, dy0, by, opt, &out)
	for vi, ci := range s.CellOf {
		nl.Cells[ci].Pos.X += dx0[vi]
		nl.Cells[ci].Pos.Y += dy0[vi]
	}
	if errX != nil {
		return out, fmt.Errorf("qp: x delta solve: %w", errX)
	}
	if errY != nil {
		return out, fmt.Errorf("qp: y delta solve: %w", errY)
	}
	return out, nil
}

// SolveResidual moves the placement by δ = C⁻¹·(−d + f − C·p): the full
// correction toward the equilibrium of the *current* system under the total
// force vector f. Unlike SolveDelta (which only responds to a force
// increment), this also reacts to changed net weights — a re-weighted
// critical net pulls its cells together immediately, which timing-driven
// placement depends on. The solve is conditioned on the residual, so small
// corrections are not lost under a large absolute system.
func (s *System) SolveResidual(forces []geom.Point, opt sparse.CGOptions) (SolveResult, error) {
	nl := s.nl
	n := s.N()
	if n == 0 {
		return SolveResult{}, nil
	}
	px := make([]float64, n)
	py := make([]float64, n)
	for vi, ci := range s.CellOf {
		px[vi] = nl.Cells[ci].Pos.X
		py[vi] = nl.Cells[ci].Pos.Y
	}
	bx := make([]float64, n)
	by := make([]float64, n)
	s.C.MulVec(bx, px)
	s.C.MulVec(by, py)
	for vi, ci := range s.CellOf {
		bx[vi] = -s.Dx[vi] - bx[vi]
		by[vi] = -s.Dy[vi] - by[vi]
		if forces != nil {
			bx[vi] += forces[ci].X
			by[vi] += forces[ci].Y
		}
	}
	dx := make([]float64, n)
	dy := make([]float64, n)
	var out SolveResult
	errX, errY := s.solveBoth(dx, bx, dy, by, opt, &out)
	for vi, ci := range s.CellOf {
		nl.Cells[ci].Pos.X += dx[vi]
		nl.Cells[ci].Pos.Y += dy[vi]
	}
	if errX != nil {
		return out, fmt.Errorf("qp: x residual solve: %w", errX)
	}
	if errY != nil {
		return out, fmt.Errorf("qp: y residual solve: %w", errY)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
