package qp

import (
	"math"
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// sameSystem compares an assembler-produced system against a fresh Build of
// the same netlist state. The assembly insertion order is identical on both
// paths; only the duplicate-merge summation order differs (Build sums in
// sorted order, Refill in insertion order), so values agree to roundoff.
func sameSystem(t *testing.T, tag string, got, want *System) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: N %d vs %d", tag, got.N(), want.N())
	}
	n := got.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g, w := got.C.At(i, j), want.C.At(i, j)
			if d := math.Abs(g - w); d > 1e-9*(1+math.Abs(w)) {
				t.Fatalf("%s: C[%d,%d] = %g, want %g", tag, i, j, g, w)
			}
		}
	}
	for i := 0; i < n; i++ {
		if d := math.Abs(got.Dx[i] - want.Dx[i]); d > 1e-9*(1+math.Abs(want.Dx[i])) {
			t.Fatalf("%s: Dx[%d] = %g, want %g", tag, i, got.Dx[i], want.Dx[i])
		}
		if d := math.Abs(got.Dy[i] - want.Dy[i]); d > 1e-9*(1+math.Abs(want.Dy[i])) {
			t.Fatalf("%s: Dy[%d] = %g, want %g", tag, i, got.Dy[i], want.Dy[i])
		}
	}
}

func assemblerNetlist(seed int64) *netlist.Netlist {
	return netgen.Generate(netgen.Config{
		Name: "asm", Cells: 60, Nets: 80, Rows: 4, Seed: seed,
	})
}

func TestAssemblerMatchesBuildAcrossChanges(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Linearize: true},
		{Model: Star},
		{Model: Hybrid, Linearize: true},
	} {
		nl := assemblerNetlist(31)
		a := NewAssembler(nl, opts)
		sameSystem(t, "initial", a.Assemble(), Build(nl, opts))

		// Move every cell (changes linearized weights and star centroids).
		for ci := range nl.Cells {
			if !nl.Cells[ci].Fixed {
				nl.Cells[ci].Pos.X += float64(ci%5) - 2
				nl.Cells[ci].Pos.Y += float64(ci%3) - 1
			}
		}
		sameSystem(t, "after move", a.Assemble(), Build(nl, opts))

		// Re-weight some nets (timing-driven placement does this).
		for ni := range nl.Nets {
			if ni%4 == 0 {
				nl.Nets[ni].Weight *= 2.5
			}
		}
		sameSystem(t, "after reweight", a.Assemble(), Build(nl, opts))
	}
}

func TestAssemblerFullSkipReturnsSameSystem(t *testing.T) {
	nl := assemblerNetlist(32)
	a := NewAssembler(nl, Options{}) // clique, no linearization: skippable
	s1 := a.Assemble()
	// Moving cells cannot change a clique/non-linearized system; the
	// assembler must detect that and return the cached system untouched.
	for ci := range nl.Cells {
		if !nl.Cells[ci].Fixed {
			nl.Cells[ci].Pos.X += 3
		}
	}
	s2 := a.Assemble()
	if s1 != s2 {
		t.Fatal("full-skip path rebuilt the system")
	}
	sameSystem(t, "skip", s2, Build(nl, Options{}))

	// A weight change must break the skip.
	nl.Nets[0].Weight *= 3
	s3 := a.Assemble()
	sameSystem(t, "post-reweight", s3, Build(nl, Options{}))
}

func TestAssemblerRebuildsOnTopologyChange(t *testing.T) {
	nl := assemblerNetlist(33)
	a := NewAssembler(nl, Options{Linearize: true})
	a.Assemble()

	// Append a cell and a net touching it: counts change, the assembler must
	// rebuild instead of refilling a stale pattern.
	nl.Cells = append(nl.Cells, nl.Cells[0])
	nl.Cells[len(nl.Cells)-1].Name = "extra"
	nl.Nets = append(nl.Nets, netlist.Net{
		Name:   "extra-net",
		Weight: 1,
		Pins: []netlist.Pin{
			{Cell: 0},
			{Cell: len(nl.Cells) - 1},
		},
	})
	sameSystem(t, "grown", a.Assemble(), Build(nl, Options{Linearize: true}))
}

func TestAssemblerSolvesLikeBuild(t *testing.T) {
	nl := assemblerNetlist(34)
	a := NewAssembler(nl, Options{Linearize: true})
	clone := nl.Clone()

	for round := 0; round < 3; round++ {
		sysA := a.Assemble()
		if _, err := sysA.Solve(nil, sparse.CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("round %d: assembler solve: %v", round, err)
		}
		sysB := Build(clone, Options{Linearize: true})
		if _, err := sysB.Solve(nil, sparse.CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("round %d: build solve: %v", round, err)
		}
		for ci := range nl.Cells {
			pa, pb := nl.Cells[ci].Pos, clone.Cells[ci].Pos
			if math.Abs(pa.X-pb.X) > 1e-6 || math.Abs(pa.Y-pb.Y) > 1e-6 {
				t.Fatalf("round %d: cell %d diverged: %v vs %v", round, ci, pa, pb)
			}
		}
	}
}
