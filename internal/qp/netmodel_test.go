package qp

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

func starCircuit(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("star", geom.Region{Outline: geom.NewRect(0, 0, 20, 20)})
	b.AddPad("p0", geom.Point{X: 0, Y: 10})
	b.AddPad("p1", geom.Point{X: 20, Y: 10})
	for _, n := range []string{"a", "c", "d", "e"} {
		b.AddCell(n, 1, 1)
	}
	b.Connect("wide", "p0", "a", "c", "d", "e", "p1")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestStarModelSolves(t *testing.T) {
	nl := starCircuit(t)
	sys := Build(nl, Options{Model: Star})
	if !sys.Matrix().IsSymmetric(1e-12) {
		t.Error("star matrix asymmetric")
	}
	if _, err := sys.Solve(nil, sparse.CGOptions{Tol: 1e-10}); err != nil {
		t.Fatal(err)
	}
	// All movable cells pulled between the pads: x within the span.
	for i := 2; i < 6; i++ {
		x := nl.Cells[i].Pos.X
		if x < 0 || x > 20 {
			t.Errorf("cell %d at x=%v", i, x)
		}
	}
}

func TestStarMatrixIsSparserThanClique(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "sp", Cells: 500, Nets: 600, Rows: 8, Seed: 121})
	clique := Build(nl, Options{Model: Clique}).Matrix().NNZ()
	star := Build(nl, Options{Model: Star}).Matrix().NNZ()
	if star >= clique {
		t.Errorf("star NNZ %d not below clique NNZ %d", star, clique)
	}
}

func TestHybridSwitchesByDegree(t *testing.T) {
	nl := starCircuit(t) // one 6-pin net
	hyLow := Build(nl, Options{Model: Hybrid, HybridThreshold: 3})
	hyHigh := Build(nl, Options{Model: Hybrid, HybridThreshold: 30})
	clique := Build(nl, Options{Model: Clique})
	if hyHigh.Matrix().NNZ() != clique.Matrix().NNZ() {
		t.Error("hybrid above threshold should equal clique")
	}
	if hyLow.Matrix().NNZ() >= clique.Matrix().NNZ() {
		t.Error("hybrid below threshold should be sparser")
	}
}

func TestStarAndCliqueAgreeAtEquilibrium(t *testing.T) {
	// For a symmetric configuration, both models put the cells at the
	// centroid of the pads.
	nl := starCircuit(t)
	solve := func(m NetModel) float64 {
		c := nl.Clone()
		// The star centroid is quasi-static (refreshed per rebuild), so
		// iterate Build+Solve to its fixed point, exactly as the placer's
		// iteration does.
		for i := 0; i < 12; i++ {
			sys := Build(c, Options{Model: m})
			if _, err := sys.Solve(nil, sparse.CGOptions{Tol: 1e-12}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Cells[2].Pos.X
	}
	xc := solve(Clique)
	xs := solve(Star)
	if math.Abs(xc-10) > 0.2 || math.Abs(xs-10) > 0.2 {
		t.Errorf("equilibria: clique %v star %v, want ~10", xc, xs)
	}
}

func TestTwoPinNetsNeverUseStar(t *testing.T) {
	b := netlist.NewBuilder("two", geom.NewRegion(1, 1, 10))
	b.AddPad("p", geom.Point{X: 0, Y: 0.5})
	b.AddCell("a", 1, 1)
	b.Connect("n", "p", "a")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	star := Build(nl, Options{Model: Star})
	clique := Build(nl, Options{Model: Clique})
	if star.Matrix().NNZ() != clique.Matrix().NNZ() {
		t.Error("2-pin net should use the direct edge under any model")
	}
	if math.Abs(star.Dx[0]-clique.Dx[0]) > 1e-12 {
		t.Error("2-pin star/clique d mismatch")
	}
}
