package netlist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

const bsNodes = `UCLA nodes 1.0
# comment
NumNodes : 4
NumTerminals : 1
	a	2	1
	bb	1	1
	blk	4	4
	pad	0	0 terminal
`

const bsNets = `UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n_one
	a O : 0.5 0
	bb I : 0 0
	blk I : -1 1
NetDegree : 2 n_two
	bb O : 0 0
	pad I : 0 0
`

const bsPl = `UCLA pl 1.0
a	1	0	: N
bb	4	0	: N
blk	6	0	: N
pad	0	9	: N /FIXED
`

const bsScl = `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
 Coordinate : 0
 Height : 1
 Sitewidth : 1
 Sitespacing : 1
 SubrowOrigin : 0
 NumSites : 20
End
CoreRow Horizontal
 Coordinate : 1
 Height : 1
 Sitewidth : 1
 Sitespacing : 1
 SubrowOrigin : 0
 NumSites : 20
End
`

func TestReadBookshelf(t *testing.T) {
	nl, err := ReadBookshelf("demo",
		strings.NewReader(bsNodes), strings.NewReader(bsNets),
		strings.NewReader(bsPl), strings.NewReader(bsScl))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Cells) != 4 || len(nl.Nets) != 2 {
		t.Fatalf("shape: %d cells %d nets", len(nl.Cells), len(nl.Nets))
	}
	// Terminal flag from .nodes and /FIXED from .pl both mark fixed.
	if !nl.Cells[3].Fixed {
		t.Error("terminal not fixed")
	}
	// Center conversion: a at lower-left (1,0), 2x1 -> center (2, 0.5).
	if nl.Cells[0].Pos != (geom.Point{X: 2, Y: 0.5}) {
		t.Errorf("a center = %v", nl.Cells[0].Pos)
	}
	// Pin offsets and directions.
	if nl.Nets[0].Pins[0].Dir != Output || nl.Nets[0].Pins[0].Offset.X != 0.5 {
		t.Errorf("pin 0 = %+v", nl.Nets[0].Pins[0])
	}
	// Rows from .scl.
	if len(nl.Region.Rows) != 2 || nl.Region.Rows[1].Y != 1 {
		t.Errorf("rows = %+v", nl.Region.Rows)
	}
	if nl.Region.Rows[0].Capacity() != 20 {
		t.Errorf("row capacity = %v", nl.Region.Rows[0].Capacity())
	}
}

func TestReadBookshelfWithoutScl(t *testing.T) {
	nl, err := ReadBookshelf("noscl",
		strings.NewReader(bsNodes), strings.NewReader(bsNets),
		strings.NewReader(bsPl), nil)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Region.Outline.Empty() {
		t.Error("no region derived from placement")
	}
}

func TestBookshelfRoundTrip(t *testing.T) {
	orig := tiny(t)
	orig.Cells[2].Pos = geom.Point{X: 3.25, Y: 0.5}
	orig.Nets[1].Pins[0].Offset = geom.Point{X: 0.5, Y: -0.25}

	var nodes, nets, pl, scl bytes.Buffer
	if err := WriteBookshelf(orig, &nodes, &nets, &pl, &scl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBookshelf("rt", &nodes, &nets, &pl, &scl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(orig.Cells) || len(got.Nets) != len(orig.Nets) {
		t.Fatalf("shape mismatch")
	}
	if math.Abs(got.HPWL()-orig.HPWL()) > 1e-9*(1+orig.HPWL()) {
		t.Errorf("HPWL %v vs %v", got.HPWL(), orig.HPWL())
	}
	if len(got.Region.Rows) != len(orig.Region.Rows) {
		t.Errorf("rows lost: %d vs %d", len(got.Region.Rows), len(orig.Region.Rows))
	}
	if got.Cells[2].Pos.Dist(orig.Cells[2].Pos) > 1e-9 {
		t.Errorf("position %v vs %v", got.Cells[2].Pos, orig.Cells[2].Pos)
	}
}

func TestLoadBookshelfAux(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("d.aux", "RowBasedPlacement : d.nodes d.nets d.pl d.scl\n")
	write("d.nodes", bsNodes)
	write("d.nets", bsNets)
	write("d.pl", bsPl)
	write("d.scl", bsScl)
	nl, err := LoadBookshelf(filepath.Join(dir, "d.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "d" || len(nl.Cells) != 4 {
		t.Errorf("loaded %q with %d cells", nl.Name, len(nl.Cells))
	}
}

func TestBookshelfErrors(t *testing.T) {
	bad := func(nodes, nets string) error {
		_, err := ReadBookshelf("bad", strings.NewReader(nodes), strings.NewReader(nets), nil, nil)
		return err
	}
	if err := bad("UCLA nodes 1.0\n a 1\n", bsNets); err == nil {
		t.Error("short node line accepted")
	}
	if err := bad("UCLA nodes 1.0\n a x y\n", bsNets); err == nil {
		t.Error("bad dimensions accepted")
	}
	if err := bad("UCLA nodes 1.0\n a 1 1\n a 1 1\n", bsNets); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := bad(bsNodes, "UCLA nets 1.0\n ghost I : 0 0\n"); err == nil {
		t.Error("pin before NetDegree accepted")
	}
	if err := bad(bsNodes, "UCLA nets 1.0\nNetDegree : 2 n\n ghost I : 0 0\n a O : 0 0\n"); err == nil {
		t.Error("unknown node pin accepted")
	}
	if _, err := LoadBookshelf("/nonexistent/file.aux"); err == nil {
		t.Error("missing aux accepted")
	}
}
