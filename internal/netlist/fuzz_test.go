package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the text-format parser: it must never panic, and any
// netlist it accepts must be valid and round-trip losslessly.
func FuzzRead(f *testing.F) {
	f.Add("circuit x\nregion 10 4 4 1\ncell a 1 1\ncell b 2 1\nnet n a:out b:in\nplace a 3 2\n")
	f.Add("region 5 5 0 0\ncell a 1 1\ncell b 1 1\nnet n a b\n")
	f.Add("# only comments\n\n")
	f.Add("cell a -1 -1\n")
	f.Add("net n\n")
	f.Add("region 10 4 4 1\ncell a 1 1 fixed 1 2 delay 1e-9 power 0.5 seq\ncell b 1 1\nnet n weight 2 a:out:0.5,0:1e-14 b\n")
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid netlist: %v\ninput: %q", verr, src)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, nl); werr != nil {
			t.Fatalf("Write failed on accepted netlist: %v", werr)
		}
		again, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected own output: %v\noutput: %q", rerr, buf.String())
		}
		if len(again.Cells) != len(nl.Cells) || len(again.Nets) != len(nl.Nets) {
			t.Fatalf("round trip changed shape: %d/%d cells, %d/%d nets",
				len(again.Cells), len(nl.Cells), len(again.Nets), len(nl.Nets))
		}
	})
}

// FuzzReadBookshelf exercises the Bookshelf parsers: no panics, and
// accepted designs validate.
func FuzzReadBookshelf(f *testing.F) {
	f.Add(bsNodes, bsNets, bsPl, bsScl)
	f.Add("UCLA nodes 1.0\nNumNodes : 1\n a 1 1\n", "UCLA nets 1.0\n", "", "")
	f.Add("", "", "", "")
	f.Add("a 1 1\nb 1 1\n", "NetDegree : 2\n a I\n b O\n", "a 0 0 : N\n", "")
	f.Fuzz(func(t *testing.T, nodes, nets, pl, scl string) {
		var plR, sclR *strings.Reader
		if pl != "" {
			plR = strings.NewReader(pl)
		}
		if scl != "" {
			sclR = strings.NewReader(scl)
		}
		var plI, sclI = ioReaderOrNil(plR), ioReaderOrNil(sclR)
		nl, err := ReadBookshelf("fuzz", strings.NewReader(nodes), strings.NewReader(nets), plI, sclI)
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("ReadBookshelf accepted an invalid netlist: %v", verr)
		}
	})
}

// ioReaderOrNil keeps a typed-nil *strings.Reader from becoming a non-nil
// io.Reader interface.
func ioReaderOrNil(r *strings.Reader) interface {
	Read([]byte) (int, error)
} {
	if r == nil {
		return nil
	}
	return r
}
