package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Bookshelf support: the GSRC/ISPD interchange format used by academic
// placers (.aux, .nodes, .nets, .pl, .scl). The dialect implemented here is
// the common row-based subset: fixed terminals, pin offsets relative to
// node centers, core rows with uniform height. Orientation tokens are
// parsed and ignored (cells are symmetric in this model).

// ReadBookshelf assembles a netlist from the four mandatory Bookshelf
// streams. scl may be nil; the region is then derived from the placement
// bounding box with one row.
func ReadBookshelf(name string, nodes, nets, pl, scl io.Reader) (*Netlist, error) {
	nl := &Netlist{Name: name}
	index := map[string]int{}

	if err := readNodes(nl, index, nodes); err != nil {
		return nil, fmt.Errorf("bookshelf nodes: %w", err)
	}
	if err := readNets(nl, index, nets); err != nil {
		return nil, fmt.Errorf("bookshelf nets: %w", err)
	}
	if pl != nil {
		if err := readPl(nl, index, pl); err != nil {
			return nil, fmt.Errorf("bookshelf pl: %w", err)
		}
	}
	if scl != nil {
		if err := readScl(nl, scl); err != nil {
			return nil, fmt.Errorf("bookshelf scl: %w", err)
		}
	}
	if nl.Region.Outline.Empty() {
		nl.Region = regionFromPlacement(nl)
	}
	nl.Normalize()
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	return nl, nil
}

// LoadBookshelf reads a design from an .aux file referencing the other
// files (all in the .aux file's directory).
func LoadBookshelf(auxPath string) (*Netlist, error) {
	auxData, err := os.ReadFile(auxPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(auxPath)
	var nodesF, netsF, plF, sclF string
	for _, tok := range strings.Fields(string(auxData)) {
		switch strings.ToLower(filepath.Ext(tok)) {
		case ".nodes":
			nodesF = tok
		case ".nets":
			netsF = tok
		case ".pl":
			plF = tok
		case ".scl":
			sclF = tok
		}
	}
	if nodesF == "" || netsF == "" {
		return nil, fmt.Errorf("bookshelf aux %q: missing .nodes or .nets reference", auxPath)
	}
	open := func(name string) (io.ReadCloser, error) {
		if name == "" {
			return nil, nil
		}
		return os.Open(filepath.Join(dir, name))
	}
	nodes, err := open(nodesF)
	if err != nil {
		return nil, err
	}
	defer nodes.Close()
	nets, err := open(netsF)
	if err != nil {
		return nil, err
	}
	defer nets.Close()
	var pl, scl io.Reader
	if plc, err := open(plF); err == nil && plc != nil {
		defer plc.Close()
		pl = plc
	}
	if sclc, err := open(sclF); err == nil && sclc != nil {
		defer sclc.Close()
		scl = sclc
	}
	base := strings.TrimSuffix(filepath.Base(auxPath), filepath.Ext(auxPath))
	return ReadBookshelf(base, nodes, nets, pl, scl)
}

// bookshelfLines iterates non-empty, non-comment lines, skipping the
// "UCLA ... 1.0" header line.
func bookshelfLines(r io.Reader, fn func(fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		if err := fn(strings.Fields(line)); err != nil {
			return err
		}
	}
	return sc.Err()
}

func readNodes(nl *Netlist, index map[string]int, r io.Reader) error {
	return bookshelfLines(r, func(f []string) error {
		if strings.HasPrefix(f[0], "NumNodes") || strings.HasPrefix(f[0], "NumTerminals") {
			return nil
		}
		if len(f) < 3 {
			return fmt.Errorf("node line %v too short", f)
		}
		w, err1 := strconv.ParseFloat(f[1], 64)
		h, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad node dimensions %v", f)
		}
		c := Cell{Name: f[0], W: w, H: h}
		if len(f) >= 4 && strings.EqualFold(f[3], "terminal") {
			c.Fixed = true
		}
		if _, dup := index[c.Name]; dup {
			return fmt.Errorf("duplicate node %q", c.Name)
		}
		index[c.Name] = len(nl.Cells)
		nl.Cells = append(nl.Cells, c)
		return nil
	})
}

func readNets(nl *Netlist, index map[string]int, r io.Reader) error {
	var cur *Net
	flush := func() {
		if cur != nil && len(cur.Pins) >= 2 {
			nl.Nets = append(nl.Nets, *cur)
		}
		cur = nil
	}
	err := bookshelfLines(r, func(f []string) error {
		switch {
		case strings.HasPrefix(f[0], "NumNets"), strings.HasPrefix(f[0], "NumPins"):
			return nil
		case f[0] == "NetDegree":
			flush()
			name := fmt.Sprintf("n%d", len(nl.Nets))
			if len(f) >= 4 {
				name = f[3]
			}
			cur = &Net{Name: name, Weight: 1}
			return nil
		default:
			if cur == nil {
				return fmt.Errorf("pin line %v before NetDegree", f)
			}
			ci, ok := index[f[0]]
			if !ok {
				return fmt.Errorf("pin references unknown node %q", f[0])
			}
			pin := Pin{Cell: ci}
			rest := f[1:]
			if len(rest) > 0 {
				switch rest[0] {
				case "I":
					pin.Dir = Input
				case "O":
					pin.Dir = Output
				case "B":
					pin.Dir = Inout
				}
				rest = rest[1:]
			}
			// Optional ": xoff yoff".
			if len(rest) >= 3 && rest[0] == ":" {
				x, e1 := strconv.ParseFloat(rest[1], 64)
				y, e2 := strconv.ParseFloat(rest[2], 64)
				if e1 != nil || e2 != nil {
					return fmt.Errorf("bad pin offset %v", f)
				}
				pin.Offset = geom.Point{X: x, Y: y}
			}
			cur.Pins = append(cur.Pins, pin)
			return nil
		}
	})
	flush()
	return err
}

func readPl(nl *Netlist, index map[string]int, r io.Reader) error {
	return bookshelfLines(r, func(f []string) error {
		if len(f) < 3 {
			return nil
		}
		ci, ok := index[f[0]]
		if !ok {
			return fmt.Errorf("pl references unknown node %q", f[0])
		}
		x, e1 := strconv.ParseFloat(f[1], 64)
		y, e2 := strconv.ParseFloat(f[2], 64)
		if e1 != nil || e2 != nil {
			return fmt.Errorf("bad pl coordinates %v", f)
		}
		c := &nl.Cells[ci]
		// Bookshelf coordinates are the lower-left corner; ours the center.
		c.Pos = geom.Point{X: x + c.W/2, Y: y + c.H/2}
		for _, tok := range f[3:] {
			if strings.Contains(tok, "FIXED") {
				c.Fixed = true
			}
		}
		return nil
	})
}

func readScl(nl *Netlist, r io.Reader) error {
	var rows []geom.Row
	var cur *geom.Row
	var siteWidth, numSites float64
	err := bookshelfLines(r, func(f []string) error {
		key := strings.ToLower(f[0])
		switch key {
		case "numrows":
			return nil
		case "corerow":
			cur = &geom.Row{Height: 1}
			siteWidth, numSites = 1, 0
			return nil
		case "end":
			if cur != nil {
				cur.X1 = cur.X0 + siteWidth*numSites
				rows = append(rows, *cur)
				cur = nil
			}
			return nil
		}
		if cur == nil || len(f) < 3 {
			return nil
		}
		val, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil // tolerate unknown attributes
		}
		switch key {
		case "coordinate":
			cur.Y = val
		case "height":
			cur.Height = val
		case "sitewidth":
			siteWidth = val
		case "numsites":
			numSites = val
		case "subroworigin":
			cur.X0 = val
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("scl defined no rows")
	}
	var bb geom.BBox
	for _, row := range rows {
		r := row.Rect()
		bb.Add(r.Lo)
		bb.Add(r.Hi)
	}
	nl.Region = geom.Region{Outline: bb.Rect(), Rows: rows}
	return nil
}

func regionFromPlacement(nl *Netlist) geom.Region {
	var bb geom.BBox
	for i := range nl.Cells {
		r := nl.Cells[i].Rect()
		bb.Add(r.Lo)
		bb.Add(r.Hi)
	}
	out := bb.Rect()
	if out.Empty() {
		out = geom.NewRect(0, 0, 1, 1)
	}
	return geom.Region{Outline: out}
}

// WriteBookshelf emits the design as the four Bookshelf streams.
func WriteBookshelf(nl *Netlist, nodes, nets, pl, scl io.Writer) error {
	// .nodes
	nw := bufio.NewWriter(nodes)
	fmt.Fprintln(nw, "UCLA nodes 1.0")
	terminals := 0
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			terminals++
		}
	}
	fmt.Fprintf(nw, "NumNodes : %d\n", len(nl.Cells))
	fmt.Fprintf(nw, "NumTerminals : %d\n", terminals)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		term := ""
		if c.Fixed {
			term = " terminal"
		}
		fmt.Fprintf(nw, "\t%s\t%g\t%g%s\n", bsName(nl, i), c.W, c.H, term)
	}
	if err := nw.Flush(); err != nil {
		return err
	}

	// .nets
	ew := bufio.NewWriter(nets)
	fmt.Fprintln(ew, "UCLA nets 1.0")
	pins := 0
	for ni := range nl.Nets {
		pins += nl.Nets[ni].Degree()
	}
	fmt.Fprintf(ew, "NumNets : %d\n", len(nl.Nets))
	fmt.Fprintf(ew, "NumPins : %d\n", pins)
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		fmt.Fprintf(ew, "NetDegree : %d %s\n", n.Degree(), nameOr(n.Name, fmt.Sprintf("n%d", ni)))
		for _, p := range n.Pins {
			var dir string
			switch p.Dir {
			case Input:
				dir = "I"
			case Output:
				dir = "O"
			default:
				// Inout (and any future direction) exports as Bookshelf's
				// bidirectional marker.
				dir = "B"
			}
			fmt.Fprintf(ew, "\t%s %s : %g %g\n", bsName(nl, p.Cell), dir, p.Offset.X, p.Offset.Y)
		}
	}
	if err := ew.Flush(); err != nil {
		return err
	}

	// .pl
	pw := bufio.NewWriter(pl)
	fmt.Fprintln(pw, "UCLA pl 1.0")
	for i := range nl.Cells {
		c := &nl.Cells[i]
		suffix := ""
		if c.Fixed {
			suffix = " /FIXED"
		}
		fmt.Fprintf(pw, "%s\t%g\t%g\t: N%s\n", bsName(nl, i), c.Pos.X-c.W/2, c.Pos.Y-c.H/2, suffix)
	}
	if err := pw.Flush(); err != nil {
		return err
	}

	// .scl
	sw := bufio.NewWriter(scl)
	fmt.Fprintln(sw, "UCLA scl 1.0")
	fmt.Fprintf(sw, "NumRows : %d\n", len(nl.Region.Rows))
	for _, row := range nl.Region.Rows {
		fmt.Fprintln(sw, "CoreRow Horizontal")
		fmt.Fprintf(sw, " Coordinate : %g\n", row.Y)
		fmt.Fprintf(sw, " Height : %g\n", row.Height)
		fmt.Fprintf(sw, " Sitewidth : 1\n")
		fmt.Fprintf(sw, " Sitespacing : 1\n")
		fmt.Fprintf(sw, " SubrowOrigin : %g\n", row.X0)
		fmt.Fprintf(sw, " NumSites : %g\n", row.Capacity())
		fmt.Fprintln(sw, "End")
	}
	return sw.Flush()
}

func bsName(nl *Netlist, ci int) string {
	return nameOr(nl.Cells[ci].Name, fmt.Sprintf("o%d", ci))
}
