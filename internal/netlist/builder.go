package netlist

import (
	"fmt"

	"repro/internal/geom"
)

// Builder assembles a Netlist incrementally with name-based lookup. It is
// the intended construction path for examples and tests; generators that
// know their indices can fill a Netlist directly.
type Builder struct {
	nl        *Netlist
	cellIndex map[string]int
	netIndex  map[string]int
	err       error
}

// NewBuilder starts a netlist with the given name and placement region.
func NewBuilder(name string, region geom.Region) *Builder {
	return &Builder{
		nl:        &Netlist{Name: name, Region: region},
		cellIndex: map[string]int{},
		netIndex:  map[string]int{},
	}
}

// Err returns the first error recorded by any builder call.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// AddCell adds a movable cell and returns its index.
func (b *Builder) AddCell(name string, w, h float64) int {
	return b.addCell(Cell{Name: name, W: w, H: h})
}

// AddBlock adds a movable macro block (a big cell). Kraftwerk treats blocks
// and cells identically; the distinct entry point exists for readability.
func (b *Builder) AddBlock(name string, w, h float64) int {
	return b.addCell(Cell{Name: name, W: w, H: h})
}

// AddPad adds a fixed cell (an I/O pad) at the given center position.
func (b *Builder) AddPad(name string, at geom.Point) int {
	return b.addCell(Cell{Name: name, W: 0, H: 0, Fixed: true, Pos: at})
}

// AddFixedCell adds a fixed cell with a footprint, e.g. a pre-placed macro.
func (b *Builder) AddFixedCell(name string, w, h float64, at geom.Point) int {
	return b.addCell(Cell{Name: name, W: w, H: h, Fixed: true, Pos: at})
}

func (b *Builder) addCell(c Cell) int {
	if _, dup := b.cellIndex[c.Name]; dup {
		b.fail("builder: duplicate cell %q", c.Name)
		return -1
	}
	idx := len(b.nl.Cells)
	b.nl.Cells = append(b.nl.Cells, c)
	b.cellIndex[c.Name] = idx
	return idx
}

// SetCellTiming sets the intrinsic delay and sequential flag of a cell.
func (b *Builder) SetCellTiming(name string, delay float64, seq bool) {
	i, ok := b.cellIndex[name]
	if !ok {
		b.fail("builder: SetCellTiming: unknown cell %q", name)
		return
	}
	b.nl.Cells[i].Delay = delay
	b.nl.Cells[i].Seq = seq
}

// SetCellPower sets the power dissipation of a cell.
func (b *Builder) SetCellPower(name string, power float64) {
	i, ok := b.cellIndex[name]
	if !ok {
		b.fail("builder: SetCellPower: unknown cell %q", name)
		return
	}
	b.nl.Cells[i].Power = power
}

// Connect adds a net connecting the named cells with center pins of
// unspecified direction. The first named cell is treated as the driver.
func (b *Builder) Connect(netName string, cellNames ...string) int {
	pins := make([]Pin, 0, len(cellNames))
	for i, cn := range cellNames {
		ci, ok := b.cellIndex[cn]
		if !ok {
			b.fail("builder: Connect %q: unknown cell %q", netName, cn)
			return -1
		}
		dir := Input
		if i == 0 {
			dir = Output
		}
		pins = append(pins, Pin{Cell: ci, Dir: dir})
	}
	return b.AddNet(netName, pins)
}

// AddNet adds a fully specified net and returns its index.
func (b *Builder) AddNet(name string, pins []Pin) int {
	if _, dup := b.netIndex[name]; dup {
		b.fail("builder: duplicate net %q", name)
		return -1
	}
	for _, p := range pins {
		if p.Cell < 0 || p.Cell >= len(b.nl.Cells) {
			b.fail("builder: net %q: pin cell index %d out of range", name, p.Cell)
			return -1
		}
	}
	idx := len(b.nl.Nets)
	b.nl.Nets = append(b.nl.Nets, Net{Name: name, Pins: pins, Weight: 1})
	b.netIndex[name] = idx
	return idx
}

// Cell returns the index of a named cell, or -1.
func (b *Builder) Cell(name string) int {
	if i, ok := b.cellIndex[name]; ok {
		return i
	}
	return -1
}

// Build validates and returns the netlist. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.nl.Normalize()
	if err := b.nl.Validate(); err != nil {
		return nil, err
	}
	return b.nl, nil
}
