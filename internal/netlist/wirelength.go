package netlist

import (
	"sort"

	"repro/internal/geom"
)

// NetBBox returns the bounding box of all pin positions of net ni.
func (nl *Netlist) NetBBox(ni int) geom.Rect {
	var bb geom.BBox
	for _, p := range nl.Nets[ni].Pins {
		bb.Add(nl.PinPos(p))
	}
	return bb.Rect()
}

// NetHPWL returns the half-perimeter wire length of net ni, unweighted.
// This is the paper's wire-length measure: "summing up the half perimeter
// of the enclosing rectangle for each net" (§6).
func (nl *Netlist) NetHPWL(ni int) float64 {
	return nl.NetBBox(ni).HalfPerimeter()
}

// HPWL returns the total unweighted half-perimeter wire length.
func (nl *Netlist) HPWL() float64 {
	var s float64
	for ni := range nl.Nets {
		s += nl.NetHPWL(ni)
	}
	return s
}

// WeightedHPWL returns the net-weight-scaled half-perimeter wire length.
func (nl *Netlist) WeightedHPWL() float64 {
	var s float64
	for ni := range nl.Nets {
		s += nl.Nets[ni].Weight * nl.NetHPWL(ni)
	}
	return s
}

// QuadraticWL returns the clique-model quadratic objective value
// ½ Σ_nets w/k Σ_pairs dist², matching the system assembled by internal/qp.
// It is primarily a test oracle: minimizing the qp system must not increase
// this value.
func (nl *Netlist) QuadraticWL() float64 {
	var s float64
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		k := len(n.Pins)
		if k < 2 {
			continue
		}
		w := n.Weight / float64(k)
		for i := 0; i < k; i++ {
			pi := nl.PinPos(n.Pins[i])
			for j := i + 1; j < k; j++ {
				s += w * pi.Dist2(nl.PinPos(n.Pins[j]))
			}
		}
	}
	return s
}

// OverlapArea returns the total pairwise overlap area of movable cells.
// It is O(n log n) via a sweep over x-sorted cells; used as a quality metric
// and test oracle, not in any inner loop.
func (nl *Netlist) OverlapArea() float64 {
	type item struct {
		r  geom.Rect
		x1 float64
	}
	items := make([]item, 0, len(nl.Cells))
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed || c.Area() == 0 {
			continue
		}
		r := c.Rect()
		items = append(items, item{r, r.Hi.X})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].r.Lo.X < items[j].r.Lo.X })
	var total float64
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].r.Lo.X >= items[i].x1 {
				break
			}
			total += items[i].r.Overlap(items[j].r)
		}
	}
	return total
}
