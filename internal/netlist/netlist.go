// Package netlist defines the circuit model every placement engine operates
// on: cells (standard cells, macro blocks, and fixed pads), pins with
// geometric offsets, and nets connecting pins. It also provides wire-length
// metrics, validation, statistics, and a plain-text interchange format.
//
// Cell positions always refer to the cell center, following the paper's
// formulation (§2.1).
package netlist

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// PinDir is the signal direction of a pin, used by timing analysis.
type PinDir int

const (
	// Inout pins are ignored by timing analysis but still pull on wires.
	Inout PinDir = iota
	// Input pins are net sinks.
	Input
	// Output pins drive a net. A net should have at most one.
	Output
)

func (d PinDir) String() string {
	switch d {
	case Input:
		return "in"
	case Output:
		return "out"
	default:
		return "inout"
	}
}

// Cell is a placeable circuit element. A macro block is simply a big cell; a
// pad is a Fixed cell. Pos is the center of the cell.
type Cell struct {
	Name  string
	W, H  float64
	Fixed bool
	Pos   geom.Point
	// Delay is the intrinsic input-to-output delay of the cell in seconds.
	Delay float64
	// Power is the cell's dissipated power in arbitrary units, used by
	// heat-driven placement.
	Power float64
	// Seq marks sequential elements (flip-flops, latches). Sequential cells
	// and fixed pads are timing path endpoints.
	Seq bool
}

// Area returns the cell area.
func (c *Cell) Area() float64 { return c.W * c.H }

// Rect returns the cell footprint at its current position.
func (c *Cell) Rect() geom.Rect { return geom.RectCenteredAt(c.Pos, c.W, c.H) }

// Pin is one connection point of a net. Cell indexes into Netlist.Cells;
// Offset is relative to the cell center.
type Pin struct {
	Cell   int
	Offset geom.Point
	Dir    PinDir
	// Cap is the pin input capacitance in farads (sinks); drivers usually
	// leave it zero.
	Cap float64
}

// Net is a set of electrically connected pins.
type Net struct {
	Name string
	Pins []Pin
	// Weight scales the net's contribution to the wire-length objective.
	// Zero-valued nets are normalized to weight 1 by Netlist.Normalize.
	Weight float64
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Pins) }

// Driver returns the index within n.Pins of the output pin, or -1 when the
// net has none.
func (n *Net) Driver() int {
	for i, p := range n.Pins {
		if p.Dir == Output {
			return i
		}
	}
	return -1
}

// Netlist is a complete placement problem: the circuit plus its region.
type Netlist struct {
	Name   string
	Cells  []Cell
	Nets   []Net
	Region geom.Region

	cellNets [][]int // lazily built: nets touching each cell
}

// PinPos returns the absolute position of pin p.
func (nl *Netlist) PinPos(p Pin) geom.Point {
	return nl.Cells[p.Cell].Pos.Add(p.Offset)
}

// NumMovable returns the number of non-fixed cells.
func (nl *Netlist) NumMovable() int {
	n := 0
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			n++
		}
	}
	return n
}

// MovableArea returns the summed area of all movable cells.
func (nl *Netlist) MovableArea() float64 {
	var a float64
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			a += nl.Cells[i].Area()
		}
	}
	return a
}

// Utilization returns movable cell area divided by region area, the paper's
// supply scaling factor s (eq. 4).
func (nl *Netlist) Utilization() float64 {
	area := nl.Region.Area()
	if area <= 0 {
		return 0
	}
	return nl.MovableArea() / area
}

// AvgCellArea returns the average movable cell area (0 for empty designs).
func (nl *Netlist) AvgCellArea() float64 {
	n := nl.NumMovable()
	if n == 0 {
		return 0
	}
	return nl.MovableArea() / float64(n)
}

// CellNets returns, for each cell, the indices of the nets connected to it.
// The index is built on first use and cached; call InvalidateIndex after
// structural edits.
func (nl *Netlist) CellNets() [][]int {
	if nl.cellNets != nil {
		return nl.cellNets
	}
	idx := make([][]int, len(nl.Cells))
	for ni := range nl.Nets {
		seen := map[int]bool{}
		for _, p := range nl.Nets[ni].Pins {
			if !seen[p.Cell] {
				seen[p.Cell] = true
				idx[p.Cell] = append(idx[p.Cell], ni)
			}
		}
	}
	nl.cellNets = idx
	return idx
}

// InvalidateIndex discards cached structural indexes. Must be called after
// adding or removing cells, nets, or pins.
func (nl *Netlist) InvalidateIndex() { nl.cellNets = nil }

// Normalize fills defaulted fields: net weights of 0 become 1, cells with
// non-positive dimensions get a minimal footprint.
func (nl *Netlist) Normalize() {
	for i := range nl.Nets {
		if nl.Nets[i].Weight <= 0 {
			nl.Nets[i].Weight = 1
		}
	}
	for i := range nl.Cells {
		if nl.Cells[i].W <= 0 {
			nl.Cells[i].W = 1e-6
		}
		if nl.Cells[i].H <= 0 {
			nl.Cells[i].H = 1e-6
		}
	}
}

// Validate checks structural consistency and returns the first problem
// found, or nil when the netlist is well formed.
func (nl *Netlist) Validate() error {
	if nl.Region.Outline.Empty() {
		return fmt.Errorf("netlist %q: empty placement region", nl.Name)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.W < 0 || c.H < 0 {
			return fmt.Errorf("cell %d (%q): negative dimensions %gx%g", i, c.Name, c.W, c.H)
		}
		if math.IsNaN(c.Pos.X) || math.IsNaN(c.Pos.Y) {
			return fmt.Errorf("cell %d (%q): NaN position", i, c.Name)
		}
	}
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		if len(n.Pins) < 2 {
			return fmt.Errorf("net %d (%q): fewer than 2 pins", ni, n.Name)
		}
		if n.Weight < 0 {
			return fmt.Errorf("net %d (%q): negative weight %g", ni, n.Name, n.Weight)
		}
		drivers := 0
		for pi, p := range n.Pins {
			if p.Cell < 0 || p.Cell >= len(nl.Cells) {
				return fmt.Errorf("net %d (%q) pin %d: cell index %d out of range", ni, n.Name, pi, p.Cell)
			}
			if p.Dir == Output {
				drivers++
			}
		}
		if drivers > 1 {
			return fmt.Errorf("net %d (%q): %d driver pins", ni, n.Name, drivers)
		}
	}
	if nl.MovableArea() > nl.Region.Area()*(1+1e-9) && nl.Region.Area() > 0 {
		return fmt.Errorf("netlist %q: movable area %.4g exceeds region area %.4g",
			nl.Name, nl.MovableArea(), nl.Region.Area())
	}
	return nil
}

// Clone returns a deep copy of the netlist (positions included).
func (nl *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:   nl.Name,
		Cells:  append([]Cell(nil), nl.Cells...),
		Nets:   make([]Net, len(nl.Nets)),
		Region: nl.Region,
	}
	out.Region.Rows = append([]geom.Row(nil), nl.Region.Rows...)
	for i := range nl.Nets {
		out.Nets[i] = nl.Nets[i]
		out.Nets[i].Pins = append([]Pin(nil), nl.Nets[i].Pins...)
	}
	return out
}

// Placement is a snapshot of all cell positions, indexed like Cells.
type Placement []geom.Point

// Snapshot captures the current cell positions.
func (nl *Netlist) Snapshot() Placement {
	return nl.SnapshotInto(nil)
}

// SnapshotInto fills p with the current cell positions, reallocating only
// when the length differs, and returns the (possibly new) slice. Hot-path
// callers pass the previous snapshot back in so steady-state iterations
// allocate nothing.
func (nl *Netlist) SnapshotInto(p Placement) Placement {
	if len(p) != len(nl.Cells) {
		p = make(Placement, len(nl.Cells))
	}
	for i := range nl.Cells {
		p[i] = nl.Cells[i].Pos
	}
	return p
}

// Restore sets all cell positions from a snapshot taken on a netlist with
// the same cell count.
func (nl *Netlist) Restore(p Placement) {
	if len(p) != len(nl.Cells) {
		panic(fmt.Sprintf("netlist: Restore with %d positions for %d cells", len(p), len(nl.Cells)))
	}
	for i := range nl.Cells {
		nl.Cells[i].Pos = p[i]
	}
}

// MaxDisplacement returns the largest cell movement between two snapshots.
func MaxDisplacement(a, b Placement) float64 {
	var m float64
	for i := range a {
		if d := a[i].Dist(b[i]); d > m {
			m = d
		}
	}
	return m
}

// TotalDisplacement returns the summed cell movement between two snapshots.
func TotalDisplacement(a, b Placement) float64 {
	var s float64
	for i := range a {
		s += a[i].Dist(b[i])
	}
	return s
}
