package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// tiny builds a 4-cell, 2-pad, 3-net netlist used across tests.
func tiny(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("tiny", geom.NewRegion(4, 1, 10))
	b.AddPad("pi", geom.Point{X: 0, Y: 2})
	b.AddPad("po", geom.Point{X: 10, Y: 2})
	b.AddCell("a", 1, 1)
	b.AddCell("b", 1, 1)
	b.AddCell("c", 2, 1)
	b.AddCell("d", 1, 1)
	b.Connect("n1", "pi", "a", "b")
	b.Connect("n2", "b", "c", "d")
	b.Connect("n3", "d", "po")
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return nl
}

func TestBuilderBasics(t *testing.T) {
	nl := tiny(t)
	if len(nl.Cells) != 6 {
		t.Errorf("cells = %d", len(nl.Cells))
	}
	if len(nl.Nets) != 3 {
		t.Errorf("nets = %d", len(nl.Nets))
	}
	if nl.NumMovable() != 4 {
		t.Errorf("movable = %d", nl.NumMovable())
	}
	if a := nl.MovableArea(); a != 5 {
		t.Errorf("movable area = %v", a)
	}
	if u := nl.Utilization(); math.Abs(u-0.125) > 1e-12 {
		t.Errorf("utilization = %v", u)
	}
	if a := nl.AvgCellArea(); a != 1.25 {
		t.Errorf("avg cell area = %v", a)
	}
}

func TestBuilderDuplicateCell(t *testing.T) {
	b := NewBuilder("dup", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 1, 1)
	b.AddCell("a", 1, 1)
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate cell error")
	}
}

func TestBuilderUnknownCellInNet(t *testing.T) {
	b := NewBuilder("bad", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 1, 1)
	b.Connect("n", "a", "ghost")
	if _, err := b.Build(); err == nil {
		t.Error("expected unknown-cell error")
	}
}

func TestBuilderDuplicateNet(t *testing.T) {
	b := NewBuilder("dup", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 1, 1)
	b.AddCell("b", 1, 1)
	b.Connect("n", "a", "b")
	b.Connect("n", "b", "a")
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate net error")
	}
}

func TestBuilderTimingAndPower(t *testing.T) {
	b := NewBuilder("t", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 1, 1)
	b.AddCell("ff", 1, 1)
	b.SetCellTiming("a", 2e-9, false)
	b.SetCellTiming("ff", 1e-9, true)
	b.SetCellPower("a", 0.5)
	b.Connect("n", "a", "ff")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nl.Cells[0].Delay != 2e-9 || nl.Cells[0].Power != 0.5 || nl.Cells[0].Seq {
		t.Errorf("cell a attrs wrong: %+v", nl.Cells[0])
	}
	if !nl.Cells[1].Seq {
		t.Error("ff not sequential")
	}
}

func TestBuilderUnknownCellAttrs(t *testing.T) {
	b := NewBuilder("t", geom.NewRegion(1, 1, 10))
	b.SetCellTiming("ghost", 1, false)
	if b.Err() == nil {
		t.Error("expected error for unknown cell in SetCellTiming")
	}
	b2 := NewBuilder("t", geom.NewRegion(1, 1, 10))
	b2.SetCellPower("ghost", 1)
	if b2.Err() == nil {
		t.Error("expected error for unknown cell in SetCellPower")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	nl := tiny(t)
	bad := nl.Clone()
	bad.Nets[0].Pins = bad.Nets[0].Pins[:1]
	if err := bad.Validate(); err == nil {
		t.Error("expected error for 1-pin net")
	}
	bad = nl.Clone()
	bad.Nets[0].Pins[0].Cell = 99
	if err := bad.Validate(); err == nil {
		t.Error("expected error for out-of-range pin")
	}
	bad = nl.Clone()
	bad.Cells[2].Pos.X = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("expected error for NaN position")
	}
	bad = nl.Clone()
	bad.Nets[0].Pins[1].Dir = Output // second driver (pin 0 already drives)
	if err := bad.Validate(); err == nil {
		t.Error("expected error for multi-driver net")
	}
	bad = nl.Clone()
	bad.Cells[2].W = 1000 // blow the utilization
	if err := bad.Validate(); err == nil {
		t.Error("expected error for overfull region")
	}
}

func TestNetDriver(t *testing.T) {
	nl := tiny(t)
	if d := nl.Nets[0].Driver(); d != 0 {
		t.Errorf("driver = %d", d)
	}
	n := Net{Pins: []Pin{{Dir: Input}, {Dir: Input}}}
	if d := n.Driver(); d != -1 {
		t.Errorf("driverless net driver = %d", d)
	}
}

func TestHPWL(t *testing.T) {
	nl := tiny(t)
	// Put everything at known spots.
	nl.Cells[2].Pos = geom.Point{X: 2, Y: 1} // a
	nl.Cells[3].Pos = geom.Point{X: 4, Y: 3} // b
	nl.Cells[4].Pos = geom.Point{X: 6, Y: 1} // c
	nl.Cells[5].Pos = geom.Point{X: 8, Y: 3} // d
	// n1: pi(0,2), a(2,1), b(4,3): bbox 4x2 -> 6
	if got := nl.NetHPWL(0); math.Abs(got-6) > 1e-12 {
		t.Errorf("n1 HPWL = %v", got)
	}
	// n2: b(4,3), c(6,1), d(8,3): bbox 4x2 -> 6
	// n3: d(8,3), po(10,2): bbox 2x1 -> 3
	if got := nl.HPWL(); math.Abs(got-15) > 1e-12 {
		t.Errorf("total HPWL = %v", got)
	}
	nl.Nets[2].Weight = 3
	if got := nl.WeightedHPWL(); math.Abs(got-21) > 1e-12 {
		t.Errorf("weighted HPWL = %v", got)
	}
}

func TestPinOffsetsAffectHPWL(t *testing.T) {
	b := NewBuilder("off", geom.NewRegion(1, 1, 10))
	b.AddCell("a", 2, 1)
	b.AddCell("b", 2, 1)
	ia := b.Cell("a")
	ib := b.Cell("b")
	b.AddNet("n", []Pin{
		{Cell: ia, Offset: geom.Point{X: 1, Y: 0}, Dir: Output},
		{Cell: ib, Offset: geom.Point{X: -1, Y: 0}, Dir: Input},
	})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 1, Y: 0.5}
	nl.Cells[1].Pos = geom.Point{X: 9, Y: 0.5}
	// Pin positions: (2,0.5) and (8,0.5) -> HPWL 6, not 8.
	if got := nl.HPWL(); math.Abs(got-6) > 1e-12 {
		t.Errorf("HPWL with offsets = %v, want 6", got)
	}
}

func TestQuadraticWL(t *testing.T) {
	nl := tiny(t)
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			nl.Cells[i].Pos = geom.Point{X: 5, Y: 2}
		}
	}
	// All movables coincide; only pad connections contribute.
	// n1 (w=1/3 per pair): pairs (pi,a),(pi,b),(a,b) => dists² 25,25,0 -> 50/3
	// n2: all zero. n3 (w=1/2): (d,po) dist²=25 -> 12.5
	want := 50.0/3 + 12.5
	if got := nl.QuadraticWL(); math.Abs(got-want) > 1e-9 {
		t.Errorf("QuadraticWL = %v, want %v", got, want)
	}
}

func TestOverlapArea(t *testing.T) {
	b := NewBuilder("ov", geom.NewRegion(4, 1, 10))
	b.AddCell("a", 2, 2)
	b.AddCell("b", 2, 2)
	b.AddCell("c", 2, 2)
	b.AddCell("x", 1, 1)
	b.AddCell("y", 1, 1)
	b.Connect("n", "a", "b")
	b.Connect("n2", "x", "y")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 1, Y: 1}
	nl.Cells[1].Pos = geom.Point{X: 2, Y: 1} // overlaps a by 1x2=2
	nl.Cells[2].Pos = geom.Point{X: 8, Y: 1} // disjoint
	nl.Cells[3].Pos = geom.Point{X: 5, Y: 3}
	nl.Cells[4].Pos = geom.Point{X: 5, Y: 3} // x,y fully coincide: 1
	if got := nl.OverlapArea(); math.Abs(got-3) > 1e-12 {
		t.Errorf("OverlapArea = %v, want 3", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	nl := tiny(t)
	nl.Cells[2].Pos = geom.Point{X: 3, Y: 3}
	snap := nl.Snapshot()
	nl.Cells[2].Pos = geom.Point{X: 7, Y: 1}
	nl.Restore(snap)
	if nl.Cells[2].Pos != (geom.Point{X: 3, Y: 3}) {
		t.Errorf("restore failed: %v", nl.Cells[2].Pos)
	}
}

func TestRestorePanicsOnMismatch(t *testing.T) {
	nl := tiny(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nl.Restore(make(Placement, 2))
}

func TestDisplacementMetrics(t *testing.T) {
	a := Placement{{X: 0, Y: 0}, {X: 1, Y: 1}}
	b := Placement{{X: 3, Y: 4}, {X: 1, Y: 2}}
	if d := MaxDisplacement(a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("MaxDisplacement = %v", d)
	}
	if d := TotalDisplacement(a, b); math.Abs(d-6) > 1e-12 {
		t.Errorf("TotalDisplacement = %v", d)
	}
}

func TestCellNetsIndex(t *testing.T) {
	nl := tiny(t)
	idx := nl.CellNets()
	// cell "b" (index 3) is on n1 and n2.
	if len(idx[3]) != 2 {
		t.Errorf("cell b nets = %v", idx[3])
	}
	// Cached instance reused.
	if &idx[0] != &nl.CellNets()[0] {
		t.Error("index not cached")
	}
	nl.InvalidateIndex()
	if nl.cellNets != nil {
		t.Error("InvalidateIndex did not clear")
	}
}

func TestCloneIsDeep(t *testing.T) {
	nl := tiny(t)
	cp := nl.Clone()
	cp.Cells[2].Pos = geom.Point{X: 42, Y: 42}
	cp.Nets[0].Pins[0].Cell = 1
	if nl.Cells[2].Pos == (geom.Point{X: 42, Y: 42}) {
		t.Error("cells shared")
	}
	if nl.Nets[0].Pins[0].Cell == 1 {
		t.Error("pins shared")
	}
}

func TestStats(t *testing.T) {
	nl := tiny(t)
	s := ComputeStats(nl)
	if s.Cells != 4 || s.Pads != 2 || s.Nets != 3 || s.Rows != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Pins != 8 || s.MaxDegree != 3 {
		t.Errorf("pins/maxdeg = %d/%d", s.Pins, s.MaxDegree)
	}
	if math.Abs(s.AvgDegree-8.0/3) > 1e-12 {
		t.Errorf("avg degree = %v", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "tiny") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestDegreeHistogram(t *testing.T) {
	nl := tiny(t)
	h := DegreeHistogram(nl)
	if !strings.Contains(h, "2:1") || !strings.Contains(h, "3:2") {
		t.Errorf("histogram = %q", h)
	}
}

func TestTopNets(t *testing.T) {
	nl := tiny(t)
	top := TopNets(nl, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if nl.Nets[top[0]].Degree() < nl.Nets[top[1]].Degree() {
		t.Error("not sorted descending")
	}
	all := TopNets(nl, 100)
	if len(all) != 3 {
		t.Errorf("TopNets over-count = %d", len(all))
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "in" || Output.String() != "out" || Inout.String() != "inout" {
		t.Error("PinDir strings wrong")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	nl := &Netlist{
		Cells: []Cell{{Name: "a"}, {Name: "b", W: 2, H: 1}},
		Nets:  []Net{{Name: "n", Pins: []Pin{{Cell: 0}, {Cell: 1}}}},
	}
	nl.Normalize()
	if nl.Nets[0].Weight != 1 {
		t.Error("weight not defaulted")
	}
	if nl.Cells[0].W <= 0 || nl.Cells[0].H <= 0 {
		t.Error("degenerate cell not fixed up")
	}
}
