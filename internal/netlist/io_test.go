package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestWriteReadRoundTrip(t *testing.T) {
	nl := tiny(t)
	nl.Cells[2].Pos = geom.Point{X: 1.5, Y: 0.5}
	nl.Cells[2].Delay = 2e-9
	nl.Cells[3].Seq = true
	nl.Cells[3].Power = 0.25
	nl.Nets[1].Weight = 2.5
	nl.Nets[1].Pins[0].Offset = geom.Point{X: 0.5, Y: -0.25}
	nl.Nets[1].Pins[1].Cap = 1e-14

	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "tiny" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Cells) != len(nl.Cells) || len(got.Nets) != len(nl.Nets) {
		t.Fatalf("shape mismatch: %d/%d cells, %d/%d nets",
			len(got.Cells), len(nl.Cells), len(got.Nets), len(nl.Nets))
	}
	if got.Cells[2].Pos != nl.Cells[2].Pos {
		t.Errorf("placed position lost: %v", got.Cells[2].Pos)
	}
	if got.Cells[2].Delay != 2e-9 {
		t.Errorf("delay lost: %v", got.Cells[2].Delay)
	}
	if !got.Cells[3].Seq || got.Cells[3].Power != 0.25 {
		t.Errorf("seq/power lost: %+v", got.Cells[3])
	}
	if got.Nets[1].Weight != 2.5 {
		t.Errorf("weight lost: %v", got.Nets[1].Weight)
	}
	if got.Nets[1].Pins[0].Offset != (geom.Point{X: 0.5, Y: -0.25}) {
		t.Errorf("offset lost: %v", got.Nets[1].Pins[0].Offset)
	}
	if got.Nets[1].Pins[1].Cap != 1e-14 {
		t.Errorf("cap lost: %v", got.Nets[1].Pins[1].Cap)
	}
	if math.Abs(got.Region.W()-10) > 1e-12 || len(got.Region.Rows) != 4 {
		t.Errorf("region lost: %v rows=%d", got.Region.Outline, len(got.Region.Rows))
	}
	// Pin directions survive.
	if got.Nets[0].Pins[0].Dir != Output || got.Nets[0].Pins[1].Dir != Input {
		t.Error("pin directions lost")
	}
	// Fixed pads survive.
	if !got.Cells[0].Fixed || got.Cells[0].Pos != (geom.Point{X: 0, Y: 2}) {
		t.Errorf("pad lost: %+v", got.Cells[0])
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
circuit demo
region 10 4 4 1

cell a 1 1
cell b 1 1
# another comment
net n a:out b:in
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(nl.Cells) != 2 || len(nl.Nets) != 1 {
		t.Errorf("parsed %d cells, %d nets", len(nl.Cells), len(nl.Nets))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown directive", "bogus x\n"},
		{"region args", "region 10\n"},
		{"region numbers", "region a b c d\n"},
		{"cell args", "cell a\n"},
		{"cell dims", "cell a x y\n"},
		{"dup cell", "region 10 4 4 1\ncell a 1 1\ncell a 1 1\n"},
		{"net unknown cell", "region 10 4 4 1\ncell a 1 1\nnet n a ghost\n"},
		{"net one pin", "region 10 4 4 1\ncell a 1 1\nnet n a\n"},
		{"bad weight", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n weight x a b\n"},
		{"bad dir", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n a:sideways b\n"},
		{"bad offset", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n a:in:1 b\n"},
		{"bad cap", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n a:in:1,1:zz b\n"},
		{"place unknown", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n a b\nplace ghost 1 1\n"},
		{"place coords", "region 10 4 4 1\ncell a 1 1\ncell b 1 1\nnet n a b\nplace a x y\n"},
		{"fixed coords", "region 10 4 4 1\ncell a 1 1 fixed x y\n"},
		{"bad delay", "region 10 4 4 1\ncell a 1 1 delay zz\n"},
		{"bad power", "region 10 4 4 1\ncell a 1 1 power zz\n"},
		{"unknown attr", "region 10 4 4 1\ncell a 1 1 sparkly\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestReadRowlessRegion(t *testing.T) {
	src := "circuit fp\nregion 100 100 0 0\ncell a 10 10\ncell b 10 10\nnet n a b\n"
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(nl.Region.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(nl.Region.Rows))
	}
	if nl.Region.Area() != 10000 {
		t.Errorf("area = %v", nl.Region.Area())
	}
}

func TestWriteUnnamedEntities(t *testing.T) {
	nl := &Netlist{
		Region: geom.NewRegion(1, 1, 10),
		Cells:  []Cell{{W: 1, H: 1}, {W: 1, H: 1}},
		Nets:   []Net{{Pins: []Pin{{Cell: 0}, {Cell: 1}}, Weight: 1}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read of unnamed output: %v\n%s", err, buf.String())
	}
	if got.Cells[0].Name != "c0" {
		t.Errorf("synthesized name = %q", got.Cells[0].Name)
	}
}
