package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the structural properties of a netlist, in the shape of
// the paper's Table 1 parameter columns (#cells, #nets, #rows) plus extras.
type Stats struct {
	Name        string
	Cells       int // movable cells
	Pads        int // fixed cells
	Nets        int
	Pins        int
	Rows        int
	MaxDegree   int
	AvgDegree   float64
	Utilization float64
	BlockCount  int // movable cells taller than one row
}

// ComputeStats gathers statistics over nl.
func ComputeStats(nl *Netlist) Stats {
	s := Stats{Name: nl.Name, Nets: len(nl.Nets), Rows: len(nl.Region.Rows)}
	rowH := 0.0
	if s.Rows > 0 {
		rowH = nl.Region.Rows[0].Height
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			s.Pads++
		} else {
			s.Cells++
			if rowH > 0 && c.H > rowH*1.5 {
				s.BlockCount++
			}
		}
	}
	for ni := range nl.Nets {
		d := nl.Nets[ni].Degree()
		s.Pins += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nets > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Nets)
	}
	s.Utilization = nl.Utilization()
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d cells, %d pads, %d nets (%d pins, max deg %d, avg %.2f), %d rows, util %.2f",
		s.Name, s.Cells, s.Pads, s.Nets, s.Pins, s.MaxDegree, s.AvgDegree, s.Rows, s.Utilization)
}

// DegreeHistogram returns net pin-count buckets (2, 3, 4, 5-10, 11-60, >60)
// as a formatted single-line summary. The >60 bucket matters because the
// paper's timing analysis disregards nets with more than 60 pins.
func DegreeHistogram(nl *Netlist) string {
	buckets := map[string]int{}
	order := []string{"2", "3", "4", "5-10", "11-60", ">60"}
	for ni := range nl.Nets {
		d := nl.Nets[ni].Degree()
		switch {
		case d == 2:
			buckets["2"]++
		case d == 3:
			buckets["3"]++
		case d == 4:
			buckets["4"]++
		case d <= 10:
			buckets["5-10"]++
		case d <= 60:
			buckets["11-60"]++
		default:
			buckets[">60"]++
		}
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s:%d", k, buckets[k]))
	}
	return strings.Join(parts, " ")
}

// TopNets returns the indices of the n highest-degree nets, descending.
func TopNets(nl *Netlist, n int) []int {
	idx := make([]int, len(nl.Nets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return nl.Nets[idx[a]].Degree() > nl.Nets[idx[b]].Degree()
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
