package netlist

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomNetlist builds an arbitrary small valid netlist from a seed.
func randomNetlist(seed int64) *Netlist {
	rng := rand.New(rand.NewSource(seed))
	nCells := 3 + rng.Intn(20)
	rows := 1 + rng.Intn(5)
	width := 20 + rng.Float64()*80
	// The region must hold all movable cells (Validate enforces it); widen
	// when the random widths exceed the random capacity.
	if need := float64(nCells) * 3.5 / float64(rows) / 0.8; width < need {
		width = need
	}
	nl := &Netlist{Name: "prop", Region: geom.NewRegion(rows, 1, width)}
	for i := 0; i < nCells; i++ {
		c := Cell{
			Name: "c" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			W:    0.5 + rng.Float64()*3,
			H:    1,
			Pos: geom.Point{
				X: rng.Float64() * width,
				Y: rng.Float64() * float64(rows),
			},
			Delay: rng.Float64() * 1e-9,
			Power: rng.Float64(),
			Seq:   rng.Intn(5) == 0,
		}
		if rng.Intn(6) == 0 {
			c.Fixed = true
		}
		nl.Cells = append(nl.Cells, c)
	}
	nNets := 2 + rng.Intn(25)
	for ni := 0; ni < nNets; ni++ {
		deg := 2 + rng.Intn(5)
		if deg > nCells {
			deg = nCells
		}
		n := Net{Name: "n" + string(rune('a'+ni%26)) + string(rune('0'+ni/26)), Weight: 0.5 + rng.Float64()*2}
		seen := map[int]bool{}
		for len(n.Pins) < deg {
			ci := rng.Intn(nCells)
			if seen[ci] {
				continue
			}
			seen[ci] = true
			dir := Input
			if len(n.Pins) == 0 {
				dir = Output
			}
			clampOff := func(v float64) float64 {
				if v > 0.5 {
					return 0.5
				}
				if v < -0.5 {
					return -0.5
				}
				return v
			}
			n.Pins = append(n.Pins, Pin{
				Cell:   ci,
				Dir:    dir,
				Offset: geom.Point{X: clampOff(rng.NormFloat64() * 0.2), Y: clampOff(rng.NormFloat64() * 0.2)},
				Cap:    rng.Float64() * 1e-14,
			})
		}
		nl.Nets = append(nl.Nets, n)
	}
	return nl
}

// TestIORoundTripProperty: Write∘Read preserves structure, positions,
// weights, offsets and HPWL for arbitrary netlists.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		nl := randomNetlist(seed)
		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Logf("seed %d write: %v", seed, err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d read: %v", seed, err)
			return false
		}
		if len(got.Cells) != len(nl.Cells) || len(got.Nets) != len(nl.Nets) {
			return false
		}
		// HPWL is a strong structural fingerprint; fixed cells keep
		// positions, movable placed cells keep theirs via place lines.
		if math.Abs(got.HPWL()-nl.HPWL()) > 1e-9*(1+nl.HPWL()) {
			t.Logf("seed %d: HPWL %v vs %v", seed, got.HPWL(), nl.HPWL())
			return false
		}
		if math.Abs(got.WeightedHPWL()-nl.WeightedHPWL()) > 1e-9*(1+nl.WeightedHPWL()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHPWLInvariantsProperty: HPWL is non-negative, translation-invariant,
// and scales linearly with coordinates.
func TestHPWLInvariantsProperty(t *testing.T) {
	f := func(seed int64, dxRaw, dyRaw int8) bool {
		nl := randomNetlist(seed)
		base := nl.HPWL()
		if base < 0 {
			return false
		}
		dx, dy := float64(dxRaw), float64(dyRaw)
		shifted := nl.Clone()
		for i := range shifted.Cells {
			shifted.Cells[i].Pos.X += dx
			shifted.Cells[i].Pos.Y += dy
		}
		if math.Abs(shifted.HPWL()-base) > 1e-6*(1+base) {
			t.Logf("seed %d: translation changed HPWL", seed)
			return false
		}
		scaled := nl.Clone()
		for i := range scaled.Cells {
			scaled.Cells[i].Pos.X *= 2
			scaled.Cells[i].Pos.Y *= 2
		}
		// Pin offsets do not scale, so allow the bound rather than
		// equality: HPWL(2p) ≤ 2·HPWL(p) + offset slack.
		if scaled.HPWL() > 2*base+4*float64(len(nl.Nets)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRestoreProperty: Restore(Snapshot()) is the identity.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		nl := randomNetlist(seed)
		snap := nl.Snapshot()
		for i := range nl.Cells {
			nl.Cells[i].Pos.X += 5
		}
		nl.Restore(snap)
		for i := range nl.Cells {
			if nl.Cells[i].Pos != snap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
