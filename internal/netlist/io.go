package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// The text interchange format is a small line-oriented language, loosely in
// the spirit of the bookshelf format but self-contained:
//
//	circuit <name>
//	region <width> <height> <rows> <rowheight>
//	cell <name> <w> <h> [fixed <x> <y>] [delay <s>] [power <p>] [seq]
//	net <name> [weight <w>] <pin> <pin> ...
//	place <cellname> <x> <y>
//
// where <pin> is  cellname[:dir[:offx,offy[:cap]]]  with dir in {in,out,io}.
// Lines starting with '#' and blank lines are ignored.

// Write serializes the netlist to w in the text interchange format.
//
//lint:ignore ctxflow bounded local serialization: the writer is a file or buffer, and a half-written netlist is worse than a late cancel
func Write(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", nameOr(nl.Name, "unnamed"))
	rh := 0.0
	if len(nl.Region.Rows) > 0 {
		rh = nl.Region.Rows[0].Height
	}
	fmt.Fprintf(bw, "region %g %g %d %g\n", nl.Region.W(), nl.Region.H(), len(nl.Region.Rows), rh)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		fmt.Fprintf(bw, "cell %s %g %g", nameOr(c.Name, fmt.Sprintf("c%d", i)), c.W, c.H)
		if c.Fixed {
			fmt.Fprintf(bw, " fixed %g %g", c.Pos.X, c.Pos.Y)
		}
		if c.Delay != 0 {
			fmt.Fprintf(bw, " delay %g", c.Delay)
		}
		if c.Power != 0 {
			fmt.Fprintf(bw, " power %g", c.Power)
		}
		if c.Seq {
			fmt.Fprintf(bw, " seq")
		}
		fmt.Fprintln(bw)
	}
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		fmt.Fprintf(bw, "net %s", nameOr(n.Name, fmt.Sprintf("n%d", ni)))
		//lint:ignore floatcmp 1 is the exact stored default weight, not a computed value; only explicit weights are written back
		if n.Weight != 1 {
			fmt.Fprintf(bw, " weight %g", n.Weight)
		}
		for _, p := range n.Pins {
			cn := nameOr(nl.Cells[p.Cell].Name, fmt.Sprintf("c%d", p.Cell))
			fmt.Fprintf(bw, " %s:%s", cn, p.Dir)
			if p.Offset != (geom.Point{}) || p.Cap != 0 {
				fmt.Fprintf(bw, ":%g,%g", p.Offset.X, p.Offset.Y)
				if p.Cap != 0 {
					fmt.Fprintf(bw, ":%g", p.Cap)
				}
			}
		}
		fmt.Fprintln(bw)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if !c.Fixed && c.Pos != (geom.Point{}) {
			fmt.Fprintf(bw, "place %s %g %g\n", nameOr(c.Name, fmt.Sprintf("c%d", i)), c.Pos.X, c.Pos.Y)
		}
	}
	return bw.Flush()
}

func nameOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// Read parses a netlist in the text interchange format.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	nl := &Netlist{}
	cells := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "circuit":
			if len(f) < 2 {
				return nil, fmt.Errorf("line %d: circuit needs a name", lineNo)
			}
			nl.Name = f[1]
		case "region":
			if len(f) != 5 {
				return nil, fmt.Errorf("line %d: region needs width height rows rowheight", lineNo)
			}
			w, err1 := strconv.ParseFloat(f[1], 64)
			h, err2 := strconv.ParseFloat(f[2], 64)
			nr, err3 := strconv.Atoi(f[3])
			rh, err4 := strconv.ParseFloat(f[4], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("line %d: bad region numbers", lineNo)
			}
			const maxRows = 1 << 20
			if !isFiniteF(w) || !isFiniteF(h) || !isFiniteF(rh) ||
				w <= 0 || h <= 0 || rh < 0 || nr < 0 || nr > maxRows {
				return nil, fmt.Errorf("line %d: region out of range", lineNo)
			}
			if nr > 0 {
				if rh <= 0 {
					return nil, fmt.Errorf("line %d: rows need a positive row height", lineNo)
				}
				nl.Region = geom.NewRegion(nr, rh, w)
				nl.Region.Outline = geom.NewRect(0, 0, w, h)
			} else {
				nl.Region = geom.Region{Outline: geom.NewRect(0, 0, w, h)}
			}
		case "cell":
			c, err := parseCell(f, lineNo)
			if err != nil {
				return nil, err
			}
			if _, dup := cells[c.Name]; dup {
				return nil, fmt.Errorf("line %d: duplicate cell %q", lineNo, c.Name)
			}
			cells[c.Name] = len(nl.Cells)
			nl.Cells = append(nl.Cells, c)
		case "net":
			n, err := parseNet(f, lineNo, cells)
			if err != nil {
				return nil, err
			}
			nl.Nets = append(nl.Nets, n)
		case "place":
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: place needs cell x y", lineNo)
			}
			ci, ok := cells[f[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: place: unknown cell %q", lineNo, f[1])
			}
			x, err1 := strconv.ParseFloat(f[2], 64)
			y, err2 := strconv.ParseFloat(f[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad place coordinates", lineNo)
			}
			nl.Cells[ci].Pos = geom.Point{X: x, Y: y}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	nl.Normalize()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parseCell(f []string, lineNo int) (Cell, error) {
	if len(f) < 4 {
		return Cell{}, fmt.Errorf("line %d: cell needs name w h", lineNo)
	}
	w, err1 := strconv.ParseFloat(f[2], 64)
	h, err2 := strconv.ParseFloat(f[3], 64)
	if err1 != nil || err2 != nil {
		return Cell{}, fmt.Errorf("line %d: bad cell dimensions", lineNo)
	}
	c := Cell{Name: f[1], W: w, H: h}
	i := 4
	for i < len(f) {
		switch f[i] {
		case "fixed":
			if i+2 >= len(f) {
				return Cell{}, fmt.Errorf("line %d: fixed needs x y", lineNo)
			}
			x, e1 := strconv.ParseFloat(f[i+1], 64)
			y, e2 := strconv.ParseFloat(f[i+2], 64)
			if e1 != nil || e2 != nil {
				return Cell{}, fmt.Errorf("line %d: bad fixed coordinates", lineNo)
			}
			c.Fixed = true
			c.Pos = geom.Point{X: x, Y: y}
			i += 3
		case "delay":
			if i+1 >= len(f) {
				return Cell{}, fmt.Errorf("line %d: delay needs a value", lineNo)
			}
			d, e := strconv.ParseFloat(f[i+1], 64)
			if e != nil {
				return Cell{}, fmt.Errorf("line %d: bad delay", lineNo)
			}
			c.Delay = d
			i += 2
		case "power":
			if i+1 >= len(f) {
				return Cell{}, fmt.Errorf("line %d: power needs a value", lineNo)
			}
			p, e := strconv.ParseFloat(f[i+1], 64)
			if e != nil {
				return Cell{}, fmt.Errorf("line %d: bad power", lineNo)
			}
			c.Power = p
			i += 2
		case "seq":
			c.Seq = true
			i++
		default:
			return Cell{}, fmt.Errorf("line %d: unknown cell attribute %q", lineNo, f[i])
		}
	}
	return c, nil
}

func parseNet(f []string, lineNo int, cells map[string]int) (Net, error) {
	if len(f) < 2 {
		return Net{}, fmt.Errorf("line %d: net needs a name", lineNo)
	}
	n := Net{Name: f[1], Weight: 1}
	i := 2
	if i+1 < len(f) && f[i] == "weight" {
		w, e := strconv.ParseFloat(f[i+1], 64)
		if e != nil {
			return Net{}, fmt.Errorf("line %d: bad net weight", lineNo)
		}
		n.Weight = w
		i += 2
	}
	for ; i < len(f); i++ {
		pin, err := parsePin(f[i], lineNo, cells)
		if err != nil {
			return Net{}, err
		}
		n.Pins = append(n.Pins, pin)
	}
	if len(n.Pins) < 2 {
		return Net{}, fmt.Errorf("line %d: net %q has fewer than 2 pins", lineNo, n.Name)
	}
	return n, nil
}

func parsePin(tok string, lineNo int, cells map[string]int) (Pin, error) {
	parts := strings.Split(tok, ":")
	ci, ok := cells[parts[0]]
	if !ok {
		return Pin{}, fmt.Errorf("line %d: pin references unknown cell %q", lineNo, parts[0])
	}
	p := Pin{Cell: ci}
	if len(parts) >= 2 {
		switch parts[1] {
		case "in":
			p.Dir = Input
		case "out":
			p.Dir = Output
		case "io", "inout", "":
			p.Dir = Inout
		default:
			return Pin{}, fmt.Errorf("line %d: unknown pin direction %q", lineNo, parts[1])
		}
	}
	if len(parts) >= 3 && parts[2] != "" {
		xy := strings.Split(parts[2], ",")
		if len(xy) != 2 {
			return Pin{}, fmt.Errorf("line %d: bad pin offset %q", lineNo, parts[2])
		}
		x, e1 := strconv.ParseFloat(xy[0], 64)
		y, e2 := strconv.ParseFloat(xy[1], 64)
		if e1 != nil || e2 != nil {
			return Pin{}, fmt.Errorf("line %d: bad pin offset numbers", lineNo)
		}
		p.Offset = geom.Point{X: x, Y: y}
	}
	if len(parts) >= 4 {
		c, e := strconv.ParseFloat(parts[3], 64)
		if e != nil {
			return Pin{}, fmt.Errorf("line %d: bad pin capacitance", lineNo)
		}
		p.Cap = c
	}
	return p, nil
}

// isFiniteF reports whether f is a finite number (parsers reject NaN/Inf
// geometry before it can propagate).
func isFiniteF(f float64) bool {
	return f == f && f < math.MaxFloat64 && f > -math.MaxFloat64
}
