package legalize

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func globalPlaced(t *testing.T, cells int, seed int64, blocks int) *netlist.Netlist {
	t.Helper()
	nl := netgen.Generate(netgen.Config{
		Name: "lg", Cells: cells, Nets: cells + cells/3,
		Rows: 10, Blocks: blocks, Seed: seed,
	})
	if _, err := place.Global(nl, place.Config{MaxIter: 60}); err != nil {
		t.Fatal(err)
	}
	return nl
}

func checkLegal(t *testing.T, nl *netlist.Netlist) {
	t.Helper()
	if ov := nl.OverlapArea(); ov > 1e-6 {
		t.Errorf("overlap area after legalization = %v", ov)
	}
	rowH := nl.Region.Rows[0].Height
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed {
			continue
		}
		if !nl.Region.Outline.ContainsRect(c.Rect().Expand(-1e-9)) {
			t.Errorf("cell %d rect %v outside region", i, c.Rect())
		}
		if c.H <= 1.5*rowH {
			// Standard cells sit centered in a row.
			ri := nl.Region.RowAt(c.Pos.Y - c.H/2)
			want := nl.Region.Rows[ri].Y + rowH/2
			if math.Abs(c.Pos.Y-want) > 1e-9 {
				t.Errorf("cell %d y=%v not on a row center", i, c.Pos.Y)
			}
		}
	}
}

func TestLegalizeRemovesOverlaps(t *testing.T) {
	nl := globalPlaced(t, 300, 71, 0)
	res, err := Legalize(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, nl)
	if res.HPWLAfter <= 0 {
		t.Error("no HPWL recorded")
	}
	if res.Displacement <= 0 {
		t.Error("legalization reported zero displacement on overlapping input")
	}
}

func TestLegalizeKeepsHPWLReasonable(t *testing.T) {
	nl := globalPlaced(t, 300, 72, 0)
	res, err := Legalize(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Legalization should not blow up the wire length.
	if res.HPWLAfter > 1.6*res.HPWLBefore {
		t.Errorf("legalization inflated HPWL %vx", res.HPWLAfter/res.HPWLBefore)
	}
}

func TestLegalizeWithBlocks(t *testing.T) {
	nl := globalPlaced(t, 250, 73, 3)
	res, err := Legalize(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 3 {
		t.Errorf("blocks = %d", res.Blocks)
	}
	checkLegal(t, nl)
}

func TestDetailedPassImproves(t *testing.T) {
	nl := globalPlaced(t, 300, 74, 0)
	with := nl.Clone()
	resNo, err := Legalize(nl, Options{DetailedPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	resYes, err := Legalize(with, Options{DetailedPasses: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resYes.HPWLAfter > resNo.HPWLAfter {
		t.Errorf("detailed pass made HPWL worse: %v > %v", resYes.HPWLAfter, resNo.HPWLAfter)
	}
	if resYes.Swaps == 0 {
		t.Error("detailed pass found no improving move on a fresh legalization")
	}
}

func TestLegalizeIdempotentOnLegalInput(t *testing.T) {
	nl := globalPlaced(t, 200, 75, 0)
	if _, err := Legalize(nl, Options{DetailedPasses: -1}); err != nil {
		t.Fatal(err)
	}
	snap := nl.Snapshot()
	res, err := Legalize(nl, Options{DetailedPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Already legal cells should barely move.
	if d := netlist.MaxDisplacement(snap, nl.Snapshot()); d > nl.Region.Rows[0].Height*2 {
		t.Errorf("re-legalization moved cells up to %v", d)
	}
	_ = res
}

func TestLegalizeErrorsWithoutRows(t *testing.T) {
	nl := netgen.Generate(netgen.Config{Name: "nr", Cells: 20, Nets: 25, Rows: 2, Seed: 76})
	nl.Region.Rows = nil
	if _, err := Legalize(nl, Options{}); err == nil {
		t.Error("expected error for row-less region")
	}
}

func TestLegalizeBlocksSeparates(t *testing.T) {
	b := netlist.NewBuilder("blk", geom.Region{Outline: geom.NewRect(0, 0, 40, 40)})
	b.AddBlock("b1", 10, 10)
	b.AddBlock("b2", 10, 10)
	b.AddBlock("b3", 10, 10)
	b.Connect("n", "b1", "b2", "b3")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		nl.Cells[i].Pos = geom.Point{X: 20, Y: 20}
	}
	LegalizeBlocks(nl, []int{0, 1, 2})
	if ov := nl.OverlapArea(); ov > 1e-6 {
		t.Errorf("blocks still overlap by %v", ov)
	}
	for i := range nl.Cells {
		if !nl.Region.Outline.ContainsRect(nl.Cells[i].Rect().Expand(-1e-9)) {
			t.Errorf("block %d outside region", i)
		}
	}
}

func TestClumpingMinimalDisplacement(t *testing.T) {
	// Three 2-wide cells desired at 5, 5.5, 20 in a [0,30] segment: the
	// first two clump around their mean, the third stays put.
	b := netlist.NewBuilder("cl", geom.NewRegion(1, 1, 30))
	b.AddCell("a", 2, 1)
	b.AddCell("b", 2, 1)
	b.AddCell("c", 2, 1)
	b.Connect("n", "a", "b", "c")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 5, Y: 0.5}
	nl.Cells[1].Pos = geom.Point{X: 5.5, Y: 0.5}
	nl.Cells[2].Pos = geom.Point{X: 20, Y: 0.5}
	seg := &Segment{Row: 0, Y: 0.5, X0: 0, X1: 30, cells: []int{0, 1, 2}}
	clumpSegment(nl, seg)
	if ov := nl.OverlapArea(); ov > 1e-9 {
		t.Fatalf("overlap after clumping: %v", ov)
	}
	// a and b straddle their desired mean: centers at 4.25+... the cluster
	// left edge minimizes Σ(x - desired)²: desired lefts 4, 4.5 -> mean
	// 4.25... cluster holds a then b: centers 5.25 and 7.25.
	if got := nl.Cells[1].Pos.X - nl.Cells[0].Pos.X; math.Abs(got-2) > 1e-9 {
		t.Errorf("a/b not abutted: gap %v", got)
	}
	if math.Abs(nl.Cells[2].Pos.X-20) > 1e-9 {
		t.Errorf("c moved to %v", nl.Cells[2].Pos.X)
	}
}
