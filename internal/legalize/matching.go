package legalize

import (
	"math"
	"sort"

	"repro/internal/assign"
	"repro/internal/netlist"
)

// MatchingPass runs independent-set matching, the assignment-problem core
// of network-flow final placers like Domino [17]: groups of
// width-compatible cells are reassigned to the group's own set of
// positions at exactly minimal approximate cost (Hungarian algorithm),
// then the move is verified against the true HPWL and committed only when
// it really improves. Returns the number of committed group moves.
func MatchingPass(nl *netlist.Netlist, segs []*Segment, groupSize int) int {
	if groupSize < 2 {
		groupSize = 6
	}
	if groupSize > 12 {
		groupSize = 12
	}
	idx := nl.CellNets()
	segOf := map[int]*Segment{}
	for _, s := range segs {
		for _, ci := range s.cells {
			segOf[ci] = s
		}
	}

	// Bucket movable standard cells by width class so any permutation of a
	// group's positions stays (nearly) legal.
	type bucket struct {
		cells []int
	}
	buckets := map[int]*bucket{}
	for _, s := range segs {
		for _, ci := range s.cells {
			k := widthClass(nl.Cells[ci].W)
			b := buckets[k]
			if b == nil {
				b = &bucket{}
				buckets[k] = b
			}
			b.cells = append(b.cells, ci)
		}
	}

	committed := 0
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		b := buckets[k]
		// Group spatial neighbors (sorted by x) so candidate positions are
		// exchangeable without long-range disruption.
		sort.Slice(b.cells, func(a, c int) bool {
			return nl.Cells[b.cells[a]].Pos.X < nl.Cells[b.cells[c]].Pos.X
		})
		for start := 0; start+1 < len(b.cells); start += groupSize {
			end := start + groupSize
			if end > len(b.cells) {
				end = len(b.cells)
			}
			if matchGroup(nl, idx, segOf, b.cells[start:end]) {
				committed++
			}
		}
	}
	if committed > 0 {
		// Cells exchanged positions, possibly across segments: rebuild the
		// membership from the geometry, then restore exact legality.
		rebindSegments(nl, segs)
		clumpSegments(nl, segs)
	}
	return committed
}

// rebindSegments reassigns every tracked cell to the segment containing
// its current center.
func rebindSegments(nl *netlist.Netlist, segs []*Segment) {
	var all []int
	for _, s := range segs {
		all = append(all, s.cells...)
		s.cells = s.cells[:0]
		s.used = 0
	}
	for _, ci := range all {
		c := &nl.Cells[ci]
		var best *Segment
		bestD := math.Inf(1)
		for _, s := range segs {
			dy := math.Abs(c.Pos.Y - s.Y)
			dx := distToInterval(c.Pos.X, s.X0+c.W/2, s.X1-c.W/2)
			if d := dx + dy; d < bestD {
				bestD = d
				best = s
			}
		}
		best.cells = append(best.cells, ci)
		best.used += c.W
	}
}

func widthClass(w float64) int { return int(w * 4) }

// matchGroup reassigns the group's cells over the group's current
// positions by minimum-cost assignment; commits only on verified HPWL
// improvement.
func matchGroup(nl *netlist.Netlist, idx [][]int, segOf map[int]*Segment, group []int) bool {
	n := len(group)
	if n < 2 {
		return false
	}
	positions := make([]struct{ x, y float64 }, n)
	for i, ci := range group {
		positions[i] = struct{ x, y float64 }{nl.Cells[ci].Pos.X, nl.Cells[ci].Pos.Y}
	}
	// Incident-net HPWL of the whole group, the exact verification metric,
	// accumulated in ascending net order so accept/revert decisions
	// reproduce across runs.
	nets := incidentNets(idx, group)
	exact := func() float64 {
		var s float64
		for _, ni := range nets {
			s += nl.Nets[ni].Weight * nl.NetHPWL(ni)
		}
		return s
	}
	before := exact()

	// Approximate independent cost: cell i at position j with all other
	// group members held at their current spots.
	cost := make([][]float64, n)
	for i, ci := range group {
		cost[i] = make([]float64, n)
		orig := nl.Cells[ci].Pos
		for j := range positions {
			nl.Cells[ci].Pos.X = positions[j].x
			nl.Cells[ci].Pos.Y = positions[j].y
			var s float64
			for _, ni := range idx[ci] {
				s += nl.Nets[ni].Weight * nl.NetHPWL(ni)
			}
			cost[i][j] = s
		}
		nl.Cells[ci].Pos = orig
	}
	sol := assign.Solve(cost)
	if math.IsInf(assign.Cost(cost, sol), 1) {
		return false
	}
	// Capacity check: position j belongs to the segment of the cell that
	// originally held it; widths within a class differ slightly, so the
	// exchange must not overfill any segment.
	delta := map[*Segment]float64{}
	for i, ci := range group {
		j := sol[i]
		from := segOf[ci]
		to := segOf[group[j]]
		if from != to {
			w := nl.Cells[ci].W
			delta[from] -= w
			delta[to] += w
		}
	}
	//lint:ignore detrange pure all-must-pass predicate with no accumulation; the verdict is the same in any iteration order
	for s, d := range delta {
		if s != nil && s.used+d > s.capacity()+1e-9 {
			return false
		}
	}
	// Apply and verify exactly.
	for i, ci := range group {
		j := sol[i]
		nl.Cells[ci].Pos.X = positions[j].x
		nl.Cells[ci].Pos.Y = positions[j].y
	}
	if exact() < before-1e-9 {
		return true
	}
	// Revert: interactions made the independent approximation wrong.
	for i, ci := range group {
		nl.Cells[ci].Pos.X = positions[i].x
		nl.Cells[ci].Pos.Y = positions[i].y
	}
	return false
}
