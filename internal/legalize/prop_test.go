package legalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
)

// TestLegalizeInvariantsProperty: over random circuits and random starting
// placements, legalization always yields zero overlap, cells inside the
// region, and standard cells on row centers — and the detailed pass never
// worsens the wire length it starts from.
func TestLegalizeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := netgen.Generate(netgen.Config{
			Name:   "prop",
			Cells:  30 + rng.Intn(150),
			Nets:   40 + rng.Intn(180),
			Rows:   3 + rng.Intn(10),
			Blocks: rng.Intn(3),
			Seed:   seed,
		})
		netgen.ScatterRandom(nl, seed+7)

		// Legalize without the improver, then with: the improver must not
		// make things worse.
		plain := nl.Clone()
		rp, err := Legalize(plain, Options{DetailedPasses: -1})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ri, err := Legalize(nl, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if nl.OverlapArea() > 1e-6 {
			t.Logf("seed %d: overlap %v", seed, nl.OverlapArea())
			return false
		}
		rowH := nl.Region.Rows[0].Height
		for i := range nl.Cells {
			c := &nl.Cells[i]
			if c.Fixed {
				continue
			}
			if !nl.Region.Outline.ContainsRect(c.Rect().Expand(-1e-9)) {
				t.Logf("seed %d: cell %d outside", seed, i)
				return false
			}
			if c.H <= 1.5*rowH {
				ri := nl.Region.RowAt(c.Pos.Y - c.H/2)
				want := nl.Region.Rows[ri].Y + rowH/2
				if d := c.Pos.Y - want; d > 1e-9 || d < -1e-9 {
					t.Logf("seed %d: cell %d off row", seed, i)
					return false
				}
			}
		}
		if ri.HPWLAfter > rp.HPWLAfter*1.01 {
			t.Logf("seed %d: improver worsened HPWL %v -> %v", seed, rp.HPWLAfter, ri.HPWLAfter)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
