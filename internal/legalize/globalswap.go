package legalize

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// GlobalSwapPass performs Domino-style cross-row improvement: every cell is
// driven toward its optimal region (the median position of its nets'
// bounding boxes), swapping with a similar-width cell near that spot or
// sliding into place when that shortens the incident wire length. Segments
// are re-clumped after each pass to restore exact legality. Returns the
// number of accepted moves.
func GlobalSwapPass(nl *netlist.Netlist, segs []*Segment, passes int) int {
	if passes <= 0 {
		return 0
	}
	idx := nl.CellNets()
	segOf := map[int]*Segment{}
	for _, s := range segs {
		for _, ci := range s.cells {
			segOf[ci] = s
		}
	}
	// Segment lookup by row for targeting.
	byRow := map[int][]*Segment{}
	for _, s := range segs {
		byRow[s.Row] = append(byRow[s.Row], s)
	}

	accepted := 0
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, s := range segs {
			// Iterate over a copy: swaps mutate segment membership.
			cells := append([]int(nil), s.cells...)
			for _, ci := range cells {
				if segOf[ci] != s {
					continue // already moved this pass
				}
				if tryGlobalMove(nl, idx, segOf, byRow, ci) {
					moved++
				}
			}
		}
		clumpSegments(nl, segs)
		accepted += moved
		if moved == 0 {
			break
		}
	}
	return accepted
}

// optimalPoint returns the median-of-bounding-box position that minimizes
// the cell's HPWL contribution, the classic "optimal region" center.
func optimalPoint(nl *netlist.Netlist, idx [][]int, ci int) geom.Point {
	var xs, ys []float64
	for _, ni := range idx[ci] {
		var bb geom.BBox
		for _, p := range nl.Nets[ni].Pins {
			if p.Cell == ci {
				continue
			}
			bb.Add(nl.PinPos(p))
		}
		if bb.Count() == 0 {
			continue
		}
		r := bb.Rect()
		xs = append(xs, r.Lo.X, r.Hi.X)
		ys = append(ys, r.Lo.Y, r.Hi.Y)
	}
	if len(xs) == 0 {
		return nl.Cells[ci].Pos
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return geom.Point{X: xs[len(xs)/2], Y: ys[len(ys)/2]}
}

// tryGlobalMove relocates ci toward its optimal point via the best swap
// with a width-compatible cell there.
func tryGlobalMove(nl *netlist.Netlist, idx [][]int, segOf map[int]*Segment, byRow map[int][]*Segment, ci int) bool {
	opt := optimalPoint(nl, idx, ci)
	curSeg := segOf[ci]
	// Candidate segments: the optimal row and its neighbors.
	row := nl.Region.RowAt(opt.Y)
	var best int = -1
	bestDelta := -1e-12
	for dr := -1; dr <= 1; dr++ {
		for _, s := range byRow[row+dr] {
			if opt.X < s.X0-1 || opt.X > s.X1+1 {
				continue
			}
			// Nearest width-compatible cell in this segment.
			for _, cj := range s.cells {
				if cj == ci {
					continue
				}
				if math.Abs(nl.Cells[cj].Pos.X-opt.X) > 4*nl.Cells[ci].W+2 {
					continue
				}
				if !widthCompatible(nl, ci, cj) {
					continue
				}
				if d := swapDelta(nl, idx, ci, cj); d < bestDelta {
					bestDelta = d
					best = cj
				}
			}
		}
	}
	if best < 0 {
		return false
	}
	// Commit: exchange centers and segment membership. Cross-segment
	// swaps of unequal widths must not overfill either segment, or the
	// re-clump would spill cells past the segment ends.
	cj := best
	si, sj := segOf[ci], segOf[cj]
	wi, wj := nl.Cells[ci].W, nl.Cells[cj].W
	if si != sj {
		if si.used-wi+wj > si.capacity() || sj.used-wj+wi > sj.capacity() {
			return false
		}
		si.used += wj - wi
		sj.used += wi - wj
		replaceInSeg(si, ci, cj)
		replaceInSeg(sj, cj, ci)
		segOf[ci], segOf[cj] = sj, si
	}
	nl.Cells[ci].Pos, nl.Cells[cj].Pos = nl.Cells[cj].Pos, nl.Cells[ci].Pos
	_ = curSeg
	return true
}

func widthCompatible(nl *netlist.Netlist, a, b int) bool {
	wa, wb := nl.Cells[a].W, nl.Cells[b].W
	d := math.Abs(wa - wb)
	return d <= 0.3*math.Min(wa, wb)+1e-9
}

// swapDelta returns the exact HPWL change of exchanging the centers of a
// and b (negative = improvement). Nets are accumulated in ascending id
// order: summing in map order would let the last-ulp rounding of the
// delta — and therefore the swap decision — vary between runs.
func swapDelta(nl *netlist.Netlist, idx [][]int, a, b int) float64 {
	nets := incidentNets(idx, []int{a, b})
	before := 0.0
	for _, ni := range nets {
		before += nl.Nets[ni].Weight * nl.NetHPWL(ni)
	}
	nl.Cells[a].Pos, nl.Cells[b].Pos = nl.Cells[b].Pos, nl.Cells[a].Pos
	after := 0.0
	for _, ni := range nets {
		after += nl.Nets[ni].Weight * nl.NetHPWL(ni)
	}
	nl.Cells[a].Pos, nl.Cells[b].Pos = nl.Cells[b].Pos, nl.Cells[a].Pos
	return after - before
}

// incidentNets returns the deduplicated ids of all nets incident to the
// given cells, in ascending order, so float accumulation over them is
// bit-reproducible across runs.
func incidentNets(idx [][]int, cells []int) []int {
	seen := map[int]bool{}
	var nets []int
	for _, ci := range cells {
		for _, ni := range idx[ci] {
			if !seen[ni] {
				seen[ni] = true
				nets = append(nets, ni)
			}
		}
	}
	sort.Ints(nets)
	return nets
}

func replaceInSeg(s *Segment, old, new int) {
	for i, ci := range s.cells {
		if ci == old {
			s.cells[i] = new
			return
		}
	}
}
