// Package legalize turns a global placement into a legal one and improves
// it locally — the role Domino [17] plays in the paper's flow ("As final
// placer for the proposed method we used Domino", §6.1). Macro blocks are
// legalized first by overlap removal; their footprints are carved out of
// the rows; standard cells are then assigned to row segments Tetris-style
// and positioned by Abacus-like clumping (minimal displacement subject to
// ordering); finally a sliding-window detailed pass reorders neighbors
// whenever that shortens the wire length.
package legalize

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obsv"
)

// Options controls legalization.
type Options struct {
	// RowSearch is how many rows above/below the target row are tried for
	// each cell (default 6; widened automatically when space runs out).
	RowSearch int
	// DetailedPasses is the number of improvement sweeps after
	// legalization (default 3; 0 disables).
	DetailedPasses int
	// BlockRowFactor: movable cells taller than this many row heights are
	// treated as macro blocks (default 1.5).
	BlockRowFactor float64
	// Spans, when set, receives pass-level span recordings
	// ("legalize/blocks", "legalize/assign", "legalize/clump",
	// "legalize/detailed"). Nil costs nothing.
	Spans *obsv.Spans
}

func (o *Options) setDefaults() {
	if o.RowSearch <= 0 {
		o.RowSearch = 6
	}
	if o.DetailedPasses < 0 {
		o.DetailedPasses = 0
	} else if o.DetailedPasses == 0 {
		o.DetailedPasses = 3
	}
	if o.BlockRowFactor <= 0 {
		o.BlockRowFactor = 1.5
	}
}

// Result summarizes a legalization.
type Result struct {
	HPWLBefore   float64
	HPWLAfter    float64
	Displacement float64 // total movement introduced by legalization
	MaxDisp      float64
	Blocks       int
	Swaps        int // improving swaps applied by the detailed pass
	Runtime      time.Duration
}

// Legalize legalizes nl in place and runs the detailed improvement.
func Legalize(nl *netlist.Netlist, opts Options) (Result, error) {
	opts.setDefaults()
	start := obsv.StartTimer()
	res := Result{HPWLBefore: nl.HPWL()}
	before := nl.Snapshot()

	if len(nl.Region.Rows) == 0 {
		return res, fmt.Errorf("legalize: region has no rows")
	}
	rowH := nl.Region.Rows[0].Height

	var blocks, cells []int
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Fixed {
			continue
		}
		if c.H > opts.BlockRowFactor*rowH {
			blocks = append(blocks, ci)
		} else {
			cells = append(cells, ci)
		}
	}
	res.Blocks = len(blocks)

	sp := opts.Spans.Start("legalize/blocks")
	LegalizeBlocks(nl, blocks)
	segs := buildSegments(nl, blocks)
	sp.End()
	sp = opts.Spans.Start("legalize/assign")
	if err := assignCells(nl, cells, segs, opts); err != nil {
		return res, err
	}
	sp.End()
	sp = opts.Spans.Start("legalize/clump")
	clumpSegments(nl, segs)
	sp.End()

	// Iterate the Domino-style improvement (global swaps toward optimal
	// regions, then window permutations) until it stops paying: each round
	// re-clumps, so later rounds see the repaired geometry.
	if opts.DetailedPasses > 0 {
		sp = opts.Spans.Start("legalize/detailed")
		prev := nl.HPWL()
		for round := 0; round < 10; round++ {
			sw := GlobalSwapPass(nl, segs, opts.DetailedPasses)
			sw += MatchingPass(nl, segs, 0)
			sw += DetailedPlace(nl, segs, opts.DetailedPasses)
			res.Swaps += sw
			cur := nl.HPWL()
			if sw == 0 || cur > prev*0.995 {
				break
			}
			prev = cur
		}
		sp.End()
	}

	after := nl.Snapshot()
	res.Displacement = netlist.TotalDisplacement(before, after)
	res.MaxDisp = netlist.MaxDisplacement(before, after)
	res.HPWLAfter = nl.HPWL()
	res.Runtime = start.Elapsed()
	return res, nil
}

// LegalizeBlocks removes overlaps among macro blocks by iterative pairwise
// separation along the axis of least displacement, clamped to the region.
func LegalizeBlocks(nl *netlist.Netlist, blocks []int) {
	out := nl.Region.Outline
	for ci := range blocks {
		c := &nl.Cells[blocks[ci]]
		c.Pos = out.ClampCenter(c.Pos, math.Min(c.W, out.W()), math.Min(c.H, out.H()))
	}
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		moved := false
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				a := &nl.Cells[blocks[i]]
				b := &nl.Cells[blocks[j]]
				ov := a.Rect().Intersect(b.Rect())
				if ov.Empty() {
					continue
				}
				moved = true
				// Separate along the cheaper axis, splitting the push.
				dx := ov.W()
				dy := ov.H()
				if dx <= dy {
					s := dx/2 + 1e-9
					if a.Pos.X <= b.Pos.X {
						a.Pos.X -= s
						b.Pos.X += s
					} else {
						a.Pos.X += s
						b.Pos.X -= s
					}
				} else {
					s := dy/2 + 1e-9
					if a.Pos.Y <= b.Pos.Y {
						a.Pos.Y -= s
						b.Pos.Y += s
					} else {
						a.Pos.Y += s
						b.Pos.Y -= s
					}
				}
				a.Pos = out.ClampCenter(a.Pos, math.Min(a.W, out.W()), math.Min(a.H, out.H()))
				b.Pos = out.ClampCenter(b.Pos, math.Min(b.W, out.W()), math.Min(b.H, out.H()))
			}
		}
		if !moved {
			return
		}
	}
	// Pairwise separation can stall when several blocks crowd a region
	// corner (the clamp pushes them back together). Fall back to a
	// deterministic grid search: blocks are replaced largest-first at the
	// free position nearest their global-placement location.
	placeBlocksGreedy(nl, blocks)
}

// placeBlocksGreedy re-places the blocks largest-first onto a candidate
// grid, choosing for each the non-overlapping position closest to its
// current location. With feasible total area this always succeeds at some
// resolution.
func placeBlocksGreedy(nl *netlist.Netlist, blocks []int) {
	out := nl.Region.Outline
	order := append([]int(nil), blocks...)
	sort.Slice(order, func(a, b int) bool {
		return nl.Cells[order[a]].Area() > nl.Cells[order[b]].Area()
	})
	var placed []int
	for _, bi := range order {
		c := &nl.Cells[bi]
		want := c.Pos
		const steps = 24
		best := geom.Point{}
		bestD := math.Inf(1)
		for iy := 0; iy <= steps; iy++ {
			for ix := 0; ix <= steps; ix++ {
				p := geom.Point{
					X: out.Lo.X + float64(ix)/steps*out.W(),
					Y: out.Lo.Y + float64(iy)/steps*out.H(),
				}
				p = out.ClampCenter(p, math.Min(c.W, out.W()), math.Min(c.H, out.H()))
				r := geom.RectCenteredAt(p, c.W, c.H)
				ok := true
				for _, pj := range placed {
					if r.Overlap(nl.Cells[pj].Rect()) > 1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if d := p.Dist(want); d < bestD {
						bestD = d
						best = p
					}
				}
			}
		}
		if !math.IsInf(bestD, 1) {
			c.Pos = best
		}
		placed = append(placed, bi)
	}
}

// Segment is a free interval of one row, with the cells assigned to it.
type Segment struct {
	Row    int
	Y      float64 // cell-center y
	X0, X1 float64
	cells  []int
	used   float64
}

func (s *Segment) capacity() float64 { return s.X1 - s.X0 }

// buildSegments carves block footprints out of the rows.
func buildSegments(nl *netlist.Netlist, blocks []int) []*Segment {
	var segs []*Segment
	for ri, row := range nl.Region.Rows {
		type iv struct{ lo, hi float64 }
		free := []iv{{row.X0, row.X1}}
		for _, bi := range blocks {
			br := nl.Cells[bi].Rect()
			if br.Hi.Y <= row.Y || br.Lo.Y >= row.Y+row.Height {
				continue
			}
			var next []iv
			for _, f := range free {
				if br.Hi.X <= f.lo || br.Lo.X >= f.hi {
					next = append(next, f)
					continue
				}
				if br.Lo.X > f.lo {
					next = append(next, iv{f.lo, br.Lo.X})
				}
				if br.Hi.X < f.hi {
					next = append(next, iv{br.Hi.X, f.hi})
				}
			}
			free = next
		}
		for _, f := range free {
			if f.hi-f.lo <= 0 {
				continue
			}
			segs = append(segs, &Segment{
				Row: ri,
				Y:   row.Y + row.Height/2,
				X0:  f.lo,
				X1:  f.hi,
			})
		}
	}
	return segs
}

// assignCells maps every standard cell to a segment with enough free
// capacity, minimizing displacement Tetris-style (cells processed in x
// order, greedy best segment).
func assignCells(nl *netlist.Netlist, cells []int, segs []*Segment, opts Options) error {
	if len(segs) == 0 {
		return fmt.Errorf("legalize: no free row segments")
	}
	bySeg := make(map[int][]*Segment) // row -> segments
	for _, s := range segs {
		bySeg[s.Row] = append(bySeg[s.Row], s)
	}
	nRows := len(nl.Region.Rows)

	order := append([]int(nil), cells...)
	sort.Slice(order, func(a, b int) bool {
		return nl.Cells[order[a]].Pos.X < nl.Cells[order[b]].Pos.X
	})

	for _, ci := range order {
		c := &nl.Cells[ci]
		targetRow := nl.Region.RowAt(c.Pos.Y - c.H/2)
		var best *Segment
		bestCost := math.Inf(1)
		radius := opts.RowSearch
		if radius > nRows {
			radius = nRows
		}
		for {
			for ri := targetRow - radius; ri <= targetRow+radius; ri++ {
				if ri < 0 || ri >= nRows {
					continue
				}
				for _, s := range bySeg[ri] {
					if s.capacity()-s.used < c.W {
						continue
					}
					dx := distToInterval(c.Pos.X, s.X0+s.used+c.W/2, s.X1-c.W/2)
					dy := math.Abs(c.Pos.Y - s.Y)
					cost := dx + dy
					if cost < bestCost {
						best, bestCost = s, cost
					}
				}
			}
			if best != nil || radius >= nRows {
				break
			}
			radius *= 4
			if radius > nRows {
				radius = nRows
			}
		}
		if best == nil {
			return fmt.Errorf("legalize: no segment fits cell %d (w=%.2f)", ci, c.W)
		}
		best.cells = append(best.cells, ci)
		best.used += c.W
		c.Pos.Y = best.Y
	}
	return nil
}

func distToInterval(x, lo, hi float64) float64 {
	if hi < lo {
		return math.Abs(x - lo)
	}
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// clumpSegments runs the Abacus-style 1-D least-displacement placement
// inside every segment: cells keep their x order, overlapping groups merge
// into clusters placed at their average desired position.
func clumpSegments(nl *netlist.Netlist, segs []*Segment) {
	for _, s := range segs {
		clumpSegment(nl, s)
	}
}

type cluster struct {
	cells  []int
	weight float64 // number of cells (unit weights)
	qx     float64 // Σ desired left-edge positions adjusted by offsets
	width  float64
	x      float64 // left edge
}

func clumpSegment(nl *netlist.Netlist, s *Segment) {
	if len(s.cells) == 0 {
		return
	}
	sort.Slice(s.cells, func(a, b int) bool {
		return nl.Cells[s.cells[a]].Pos.X < nl.Cells[s.cells[b]].Pos.X
	})
	var stack []*cluster
	for _, ci := range s.cells {
		c := &nl.Cells[ci]
		desired := c.Pos.X - c.W/2 // desired left edge
		cl := &cluster{cells: []int{ci}, weight: 1, qx: desired, width: c.W}
		cl.x = clampF(desired, s.X0, s.X1-cl.width)
		stack = append(stack, cl)
		// Merge while overlapping the previous cluster.
		for len(stack) > 1 {
			top := stack[len(stack)-1]
			prev := stack[len(stack)-2]
			if prev.x+prev.width <= top.x+1e-12 {
				break
			}
			// Merge top into prev. Desired position of merged cluster:
			// average of member desires with members offset by prefix
			// widths — accumulate qx as Σ(desired_i − offset_i).
			prev.qx += top.qx - top.weight*prev.width
			prev.weight += top.weight
			prev.cells = append(prev.cells, top.cells...)
			prev.width += top.width
			prev.x = clampF(prev.qx/prev.weight, s.X0, s.X1-prev.width)
			stack = stack[:len(stack)-1]
		}
	}
	for _, cl := range stack {
		x := cl.x
		for _, ci := range cl.cells {
			c := &nl.Cells[ci]
			c.Pos.X = x + c.W/2
			x += c.W
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	if hi < lo {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DetailedPlace runs Domino-like local improvement: sliding windows of up
// to three adjacent cells per segment are permuted whenever that reduces
// the half-perimeter wire length. Returns the number of improving changes.
func DetailedPlace(nl *netlist.Netlist, segs []*Segment, passes int) int {
	improved := 0
	for pass := 0; pass < passes; pass++ {
		changed := 0
		for _, s := range segs {
			changed += improveSegment(nl, s)
		}
		improved += changed
		if changed == 0 {
			break
		}
	}
	return improved
}

// improveSegment tries reversing each adjacent pair and rotating each
// adjacent triple, keeping changes that shorten incident nets.
func improveSegment(nl *netlist.Netlist, s *Segment) int {
	if len(s.cells) < 2 {
		return 0
	}
	idx := nl.CellNets()
	changed := 0
	for i := 0; i+1 < len(s.cells); i++ {
		if tryReorder(nl, idx, s, i, 2) {
			changed++
		}
	}
	for i := 0; i+2 < len(s.cells); i++ {
		if tryReorder(nl, idx, s, i, 3) {
			changed++
		}
	}
	return changed
}

// tryReorder permutes the k cells starting at window position i and keeps
// the best ordering (cells repacked over the same span).
func tryReorder(nl *netlist.Netlist, idx [][]int, s *Segment, i, k int) bool {
	window := s.cells[i : i+k]
	// Incident nets in ascending id order: the cost sums must accumulate
	// identically across runs or the kept ordering could differ.
	nets := incidentNets(idx, window)
	cost := func() float64 {
		var c float64
		for _, ni := range nets {
			c += nl.Nets[ni].Weight * nl.NetHPWL(ni)
		}
		return c
	}
	span0 := nl.Cells[window[0]].Pos.X - nl.Cells[window[0]].W/2

	place := func(order []int) {
		x := span0
		for _, ci := range order {
			c := &nl.Cells[ci]
			c.Pos.X = x + c.W/2
			x += c.W
		}
	}

	orig := append([]int(nil), window...)
	best := append([]int(nil), window...)
	bestCost := cost()
	improvedAny := false
	permute(window, func(order []int) {
		place(order)
		if c := cost(); c < bestCost-1e-12 {
			bestCost = c
			copy(best, order)
			improvedAny = true
		}
	})
	copy(window, best)
	place(window)
	if !improvedAny {
		copy(window, orig)
		place(window)
	}
	return improvedAny
}

// permute enumerates permutations of s (small k), calling f on each.
func permute(s []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(s) {
			f(s)
			return
		}
		for i := k; i < len(s); i++ {
			s[k], s[i] = s[i], s[k]
			rec(k + 1)
			s[k], s[i] = s[i], s[k]
		}
	}
	rec(0)
}
