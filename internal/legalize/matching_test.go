package legalize

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// crossedPairs builds two equal-width cell pairs placed so that their nets
// cross: matching should uncross them.
func crossedPairs(t *testing.T) (*netlist.Netlist, []*Segment) {
	t.Helper()
	b := netlist.NewBuilder("x", geom.NewRegion(1, 1, 40))
	b.AddPad("pl", geom.Point{X: 0, Y: 0.5})
	b.AddPad("pr", geom.Point{X: 40, Y: 0.5})
	b.AddCell("a", 2, 1)
	b.AddCell("c", 2, 1)
	b.Connect("na", "pl", "a")
	b.Connect("nc", "c", "pr")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Crossed: the left-connected cell sits right and vice versa.
	nl.Cells[2].Pos = geom.Point{X: 30, Y: 0.5} // a (wants left)
	nl.Cells[3].Pos = geom.Point{X: 10, Y: 0.5} // c (wants right)
	seg := &Segment{Row: 0, Y: 0.5, X0: 0, X1: 40, cells: []int{2, 3}, used: 4}
	return nl, []*Segment{seg}
}

func TestMatchingUncrossesPairs(t *testing.T) {
	nl, segs := crossedPairs(t)
	before := nl.HPWL()
	moves := MatchingPass(nl, segs, 4)
	if moves == 0 {
		t.Fatal("matching found no improvement on crossed pairs")
	}
	if nl.HPWL() >= before {
		t.Errorf("HPWL did not improve: %v -> %v", before, nl.HPWL())
	}
	if nl.Cells[2].Pos.X > nl.Cells[3].Pos.X {
		t.Error("pairs still crossed")
	}
}

func TestMatchingNeverWorsens(t *testing.T) {
	nl, segs := crossedPairs(t)
	// First pass improves; a second pass on the optimal state must be a
	// no-op and never worsen.
	MatchingPass(nl, segs, 4)
	opt := nl.HPWL()
	moves := MatchingPass(nl, segs, 4)
	if moves != 0 {
		t.Errorf("matching claims %d improvements at the optimum", moves)
	}
	if nl.HPWL() > opt+1e-9 {
		t.Errorf("second pass worsened HPWL: %v -> %v", opt, nl.HPWL())
	}
}

func TestMatchingKeepsWidthClasses(t *testing.T) {
	// A wide and a narrow cell must not trade places even when crossed.
	b := netlist.NewBuilder("w", geom.NewRegion(1, 1, 40))
	b.AddPad("pl", geom.Point{X: 0, Y: 0.5})
	b.AddPad("pr", geom.Point{X: 40, Y: 0.5})
	b.AddCell("wide", 8, 1)
	b.AddCell("narrow", 1, 1)
	b.Connect("na", "pl", "wide")
	b.Connect("nc", "narrow", "pr")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[2].Pos = geom.Point{X: 30, Y: 0.5}
	nl.Cells[3].Pos = geom.Point{X: 10, Y: 0.5}
	seg := &Segment{Row: 0, Y: 0.5, X0: 0, X1: 40, cells: []int{2, 3}, used: 9}
	MatchingPass(nl, []*Segment{seg}, 4)
	// Different width classes -> no exchange; positions unchanged.
	if nl.Cells[2].Pos.X != 30 || nl.Cells[3].Pos.X != 10 {
		t.Error("width classes were mixed")
	}
}

func TestRebindSegments(t *testing.T) {
	nl, segs := crossedPairs(t)
	// Manually swap and rebind.
	nl.Cells[2].Pos, nl.Cells[3].Pos = nl.Cells[3].Pos, nl.Cells[2].Pos
	rebindSegments(nl, segs)
	if len(segs[0].cells) != 2 {
		t.Errorf("segment lost cells: %v", segs[0].cells)
	}
	if segs[0].used != 4 {
		t.Errorf("used = %v", segs[0].used)
	}
}
