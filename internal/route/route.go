// Package route implements the probabilistic routing estimation behind the
// paper's congestion-driven placement (§5): "Before each placement
// transformation a routing estimation is executed. Then, a congestion map
// is determined which is used in combination with the density D(x,y)".
//
// The estimator is the standard bounding-box wiring-density model (each
// net's expected wire length is smeared uniformly over its bounding box),
// which needs no router and matches the paper's level of abstraction.
package route

import (
	"math"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Map is a congestion map over a bin grid.
type Map struct {
	Region geom.Rect
	NX, NY int
	BinW   float64
	BinH   float64
	// Usage is the estimated wiring demand per bin (wire length units).
	Usage []float64
	// Capacity is the routable wire length per bin.
	Capacity float64
}

// Estimate builds a congestion map for the current placement. tracksPerUnit
// is the routing capacity in wire-length units per unit area (defaults
// to twice the average demand so a balanced design is uncongested).
func Estimate(nl *netlist.Netlist, nx, ny int, tracksPerUnit float64) *Map {
	region := nl.Region.Outline
	m := &Map{
		Region: region,
		NX:     nx, NY: ny,
		BinW:  region.W() / float64(nx),
		BinH:  region.H() / float64(ny),
		Usage: make([]float64, nx*ny),
	}
	for ni := range nl.Nets {
		bb := nl.NetBBox(ni)
		if bb.Empty() {
			// Degenerate box: pins coincide; spread a minimal demand at
			// the point.
			bb = bb.Expand(m.BinW / 4)
		}
		wl := nl.Nets[ni].Weight * bb.HalfPerimeter()
		area := bb.Area()
		if area <= 0 {
			continue
		}
		perArea := wl / area
		ix0, iy0 := m.binAt(bb.Lo)
		ix1, iy1 := m.binAt(bb.Hi)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				ov := m.binRect(ix, iy).Overlap(bb)
				if ov > 0 {
					m.Usage[iy*nx+ix] += perArea * ov
				}
			}
		}
	}
	if tracksPerUnit <= 0 {
		var total float64
		for _, u := range m.Usage {
			total += u
		}
		tracksPerUnit = 2 * total / region.Area()
	}
	m.Capacity = tracksPerUnit * m.BinW * m.BinH
	return m
}

func (m *Map) binAt(p geom.Point) (int, int) {
	ix := int((p.X - m.Region.Lo.X) / m.BinW)
	iy := int((p.Y - m.Region.Lo.Y) / m.BinH)
	return clampInt(ix, 0, m.NX-1), clampInt(iy, 0, m.NY-1)
}

func (m *Map) binRect(ix, iy int) geom.Rect {
	return geom.RectWH(
		m.Region.Lo.X+float64(ix)*m.BinW,
		m.Region.Lo.Y+float64(iy)*m.BinH,
		m.BinW, m.BinH,
	)
}

// Overflow returns the total usage beyond capacity, normalized by total
// usage — the fraction of wiring sitting in congested bins.
func (m *Map) Overflow() float64 {
	var over, total float64
	for _, u := range m.Usage {
		if u > m.Capacity {
			over += u - m.Capacity
		}
		total += u
	}
	if total == 0 {
		return 0
	}
	return over / total
}

// MaxCongestion returns the peak usage/capacity ratio.
func (m *Map) MaxCongestion() float64 {
	var peak float64
	for _, u := range m.Usage {
		if r := u / m.Capacity; r > peak {
			peak = r
		}
	}
	return peak
}

// ExtraDemand converts the congestion overflow into an additional density
// demand map for the given placement grid, implementing the §5 blending:
// congested bins read as over-dense, so the force field pushes cells away
// from them. weight scales overflow wiring into cell-area units.
func (m *Map) ExtraDemand(g *density.Grid, weight float64) []float64 {
	if weight <= 0 {
		weight = 1
	}
	out := make([]float64, g.NX*g.NY)
	binArea := g.BinW * g.BinH
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			c := g.BinCenter(ix, iy)
			mx := clampInt(int((c.X-m.Region.Lo.X)/m.BinW), 0, m.NX-1)
			my := clampInt(int((c.Y-m.Region.Lo.Y)/m.BinH), 0, m.NY-1)
			u := m.Usage[my*m.NX+mx]
			if u > m.Capacity {
				frac := (u - m.Capacity) / math.Max(m.Capacity, 1e-12)
				out[iy*g.NX+ix] = weight * frac * binArea
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
