package route

import (
	"math"
	"testing"

	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func placed(t *testing.T, cells int, seed int64) *netlist.Netlist {
	t.Helper()
	nl := netgen.Generate(netgen.Config{Name: "r", Cells: cells, Nets: cells + cells/3, Rows: 8, Seed: seed})
	if _, err := place.Global(nl, place.Config{MaxIter: 40}); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestEstimateConservesWireLength(t *testing.T) {
	nl := placed(t, 200, 81)
	m := Estimate(nl, 32, 8, 0)
	var total float64
	for _, u := range m.Usage {
		total += u
	}
	want := nl.WeightedHPWL()
	// Bounding boxes clipped at region edges can lose a little demand;
	// most must be accounted for.
	if total < 0.9*want || total > 1.1*want {
		t.Errorf("usage total %v vs weighted HPWL %v", total, want)
	}
}

func TestCongestionConcentratesWhereNetsAre(t *testing.T) {
	// Two cells joined by one net in a corner: usage should appear only in
	// that corner.
	b := netlist.NewBuilder("c", geom.NewRegion(8, 1, 64))
	b.AddCell("a", 1, 1)
	b.AddCell("bb", 1, 1)
	b.Connect("n", "a", "bb")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 2, Y: 1}
	nl.Cells[1].Pos = geom.Point{X: 6, Y: 2}
	m := Estimate(nl, 16, 4, 0)
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < 16; ix++ {
			u := m.Usage[iy*16+ix]
			inBox := ix <= 2 && iy == 0
			if !inBox && u > 1e-9 {
				t.Errorf("usage %v leaked to bin (%d,%d)", u, ix, iy)
			}
		}
	}
}

func TestOverflowAndPeak(t *testing.T) {
	nl := placed(t, 300, 82)
	m := Estimate(nl, 32, 8, 0)
	ov := m.Overflow()
	if ov < 0 || ov > 1 {
		t.Errorf("overflow = %v", ov)
	}
	if m.MaxCongestion() <= 0 {
		t.Error("no peak congestion")
	}
	// Tiny capacity: everything overflows.
	tiny := Estimate(nl, 32, 8, 1e-9)
	if tiny.Overflow() < 0.9 {
		t.Errorf("tiny capacity overflow = %v", tiny.Overflow())
	}
}

func TestExtraDemandTargetsCongestedBins(t *testing.T) {
	nl := placed(t, 300, 83)
	m := Estimate(nl, 32, 8, 0)
	g := density.NewGrid(nl.Region.Outline, 32, 8)
	extra := m.ExtraDemand(g, 1)
	var sum float64
	for _, e := range extra {
		if e < 0 {
			t.Fatal("negative extra demand")
		}
		sum += e
	}
	if m.Overflow() > 0 && sum == 0 {
		t.Error("overflowing map produced no extra demand")
	}
}

func TestCongestionDrivenPlacementReducesOverflow(t *testing.T) {
	run := func(driven bool) float64 {
		nl := netgen.Generate(netgen.Config{Name: "cd", Cells: 300, Nets: 400, Rows: 8, Seed: 84})
		cfg := place.Config{MaxIter: 80}
		cap := 0.0
		if driven {
			cfg.ExtraDemand = func(g *density.Grid) []float64 {
				m := Estimate(nl, g.NX, g.NY, cap)
				if cap == 0 {
					cap = m.Capacity / (g.BinW * g.BinH) // freeze capacity
				}
				return m.ExtraDemand(g, 0.5)
			}
		}
		if _, err := place.Global(nl, cfg); err != nil {
			t.Fatal(err)
		}
		final := Estimate(nl, 32, 8, 0)
		return final.MaxCongestion()
	}
	plain := run(false)
	driven := run(true)
	// Congestion-driven placement should not be clearly worse; usually
	// better. (Peak congestion is noisy, so allow slack.)
	if driven > plain*1.15 {
		t.Errorf("congestion-driven peak %v much worse than plain %v", driven, plain)
	}
	if math.IsNaN(driven) || math.IsNaN(plain) {
		t.Fatal("NaN congestion")
	}
}
