package route

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// DirectionalMap refines the bounding-box estimate with the classic
// probabilistic L/Z-route model: every 2-pin connection (a net decomposes
// into driver→sink pairs, or a star around the centroid) contributes
// horizontal usage along its x-span and vertical usage along its y-span,
// distributed over the rows/columns it could route through with equal
// probability per Z-bend position. Horizontal and vertical demand are
// tracked separately, as real routing layers are.
type DirectionalMap struct {
	Region geom.Rect
	NX, NY int
	BinW   float64
	BinH   float64
	// HUsage and VUsage are wire length per bin in each direction.
	HUsage []float64
	VUsage []float64
	// HCap and VCap are the per-bin routable lengths per direction.
	HCap, VCap float64
}

// EstimateDirectional builds the two-layer usage map at the current
// placement. capPerUnit is the per-direction routing capacity in wire
// length per unit area (0 = auto: twice the average demand).
func EstimateDirectional(nl *netlist.Netlist, nx, ny int, capPerUnit float64) *DirectionalMap {
	region := nl.Region.Outline
	m := &DirectionalMap{
		Region: region,
		NX:     nx, NY: ny,
		BinW:   region.W() / float64(nx),
		BinH:   region.H() / float64(ny),
		HUsage: make([]float64, nx*ny),
		VUsage: make([]float64, nx*ny),
	}
	for ni := range nl.Nets {
		net := &nl.Nets[ni]
		w := net.Weight
		// Decompose: driver to every sink; driverless nets use the first
		// pin as a pseudo-driver.
		di := net.Driver()
		if di < 0 {
			di = 0
		}
		src := nl.PinPos(net.Pins[di])
		for pi, p := range net.Pins {
			if pi == di {
				continue
			}
			m.addConnection(src, nl.PinPos(p), w)
		}
	}
	if capPerUnit <= 0 {
		var total float64
		for i := range m.HUsage {
			total += m.HUsage[i] + m.VUsage[i]
		}
		capPerUnit = total / region.Area()
	}
	binArea := m.BinW * m.BinH
	m.HCap = capPerUnit * binArea
	m.VCap = capPerUnit * binArea
	return m
}

// addConnection spreads one 2-pin connection's H and V wire over the
// Z-route distribution: the horizontal wire runs on some row between the
// endpoints' rows (uniformly likely), the vertical wire on some column
// between the endpoints' columns.
func (m *DirectionalMap) addConnection(a, b geom.Point, w float64) {
	ax, ay := m.binOf(a)
	bx, by := m.binOf(b)
	if ax > bx {
		ax, bx = bx, ax
	}
	if ay > by {
		ay, by = by, ay
	}
	hLen := w * math.Abs(a.X-b.X)
	vLen := w * math.Abs(a.Y-b.Y)
	// Horizontal segment: spans columns ax..bx on one of the rows ay..by.
	cols := bx - ax + 1
	rows := by - ay + 1
	if hLen > 0 {
		per := hLen / float64(cols*rows)
		for iy := ay; iy <= by; iy++ {
			for ix := ax; ix <= bx; ix++ {
				m.HUsage[iy*m.NX+ix] += per
			}
		}
	}
	if vLen > 0 {
		per := vLen / float64(cols*rows)
		for iy := ay; iy <= by; iy++ {
			for ix := ax; ix <= bx; ix++ {
				m.VUsage[iy*m.NX+ix] += per
			}
		}
	}
}

func (m *DirectionalMap) binOf(p geom.Point) (int, int) {
	ix := int((p.X - m.Region.Lo.X) / m.BinW)
	iy := int((p.Y - m.Region.Lo.Y) / m.BinH)
	return clampInt(ix, 0, m.NX-1), clampInt(iy, 0, m.NY-1)
}

// MaxCongestion returns the worst per-direction usage/capacity ratio.
func (m *DirectionalMap) MaxCongestion() float64 {
	var peak float64
	for i := range m.HUsage {
		if r := m.HUsage[i] / m.HCap; r > peak {
			peak = r
		}
		if r := m.VUsage[i] / m.VCap; r > peak {
			peak = r
		}
	}
	return peak
}

// Overflow returns overflowing wire length (both directions) normalized by
// total usage.
func (m *DirectionalMap) Overflow() float64 {
	var over, total float64
	for i := range m.HUsage {
		if m.HUsage[i] > m.HCap {
			over += m.HUsage[i] - m.HCap
		}
		if m.VUsage[i] > m.VCap {
			over += m.VUsage[i] - m.VCap
		}
		total += m.HUsage[i] + m.VUsage[i]
	}
	if total == 0 {
		return 0
	}
	return over / total
}

// Combined returns H+V usage per bin (for rendering).
func (m *DirectionalMap) Combined() []float64 {
	out := make([]float64, len(m.HUsage))
	for i := range out {
		out[i] = m.HUsage[i] + m.VUsage[i]
	}
	return out
}
