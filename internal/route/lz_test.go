package route

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// hv builds two cells joined by one net with a known span.
func hv(t *testing.T, ax, ay, bx, by float64) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("hv", geom.Region{Outline: geom.NewRect(0, 0, 16, 16)})
	b.AddCell("a", 1, 1)
	b.AddCell("c", 1, 1)
	b.Connect("n", "a", "c")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: ax, Y: ay}
	nl.Cells[1].Pos = geom.Point{X: bx, Y: by}
	return nl
}

func TestDirectionalConservesWireLength(t *testing.T) {
	nl := hv(t, 2, 3, 10, 9)
	m := EstimateDirectional(nl, 8, 8, 0)
	var h, v float64
	for i := range m.HUsage {
		h += m.HUsage[i]
		v += m.VUsage[i]
	}
	if math.Abs(h-8) > 1e-9 {
		t.Errorf("H usage total %v, want 8", h)
	}
	if math.Abs(v-6) > 1e-9 {
		t.Errorf("V usage total %v, want 6", v)
	}
}

func TestDirectionalPureHorizontal(t *testing.T) {
	nl := hv(t, 2, 5, 14, 5)
	m := EstimateDirectional(nl, 8, 8, 0)
	for i, v := range m.VUsage {
		if v != 0 {
			t.Fatalf("vertical usage %v at bin %d for a horizontal net", v, i)
		}
	}
	// All H usage on the net's row band.
	rowY := int(5.0 / m.BinH)
	for iy := 0; iy < 8; iy++ {
		for ix := 0; ix < 8; ix++ {
			u := m.HUsage[iy*m.NX+ix]
			if iy != rowY && u != 0 {
				t.Fatalf("H usage leaked to row %d", iy)
			}
		}
	}
}

func TestDirectionalStaysInBoundingBox(t *testing.T) {
	nl := hv(t, 2, 2, 6, 6)
	m := EstimateDirectional(nl, 16, 16, 0)
	for iy := 0; iy < 16; iy++ {
		for ix := 0; ix < 16; ix++ {
			u := m.HUsage[iy*16+ix] + m.VUsage[iy*16+ix]
			in := ix >= 2 && ix <= 6 && iy >= 2 && iy <= 6
			if !in && u > 1e-12 {
				t.Fatalf("usage %v outside bbox at (%d,%d)", u, ix, iy)
			}
		}
	}
}

func TestDirectionalMetrics(t *testing.T) {
	nl := hv(t, 2, 3, 10, 9)
	m := EstimateDirectional(nl, 8, 8, 0)
	if m.MaxCongestion() <= 0 {
		t.Error("no peak congestion")
	}
	if ov := m.Overflow(); ov < 0 || ov > 1 {
		t.Errorf("overflow = %v", ov)
	}
	tiny := EstimateDirectional(nl, 8, 8, 1e-12)
	if tiny.Overflow() < 0.9 {
		t.Errorf("tiny capacity overflow = %v", tiny.Overflow())
	}
	c := m.Combined()
	if len(c) != 64 {
		t.Fatal("combined length")
	}
	var sum float64
	for _, v := range c {
		sum += v
	}
	if math.Abs(sum-14) > 1e-9 {
		t.Errorf("combined total %v, want 14", sum)
	}
}

func TestDirectionalMultiPinStar(t *testing.T) {
	b := netlist.NewBuilder("star", geom.Region{Outline: geom.NewRect(0, 0, 16, 16)})
	b.AddCell("d", 1, 1)
	b.AddCell("s1", 1, 1)
	b.AddCell("s2", 1, 1)
	b.Connect("n", "d", "s1", "s2") // d drives both
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[0].Pos = geom.Point{X: 8, Y: 8}
	nl.Cells[1].Pos = geom.Point{X: 2, Y: 8}
	nl.Cells[2].Pos = geom.Point{X: 14, Y: 8}
	m := EstimateDirectional(nl, 8, 8, 0)
	var h float64
	for _, u := range m.HUsage {
		h += u
	}
	// Two driver→sink connections: 6 + 6 = 12.
	if math.Abs(h-12) > 1e-9 {
		t.Errorf("star H total %v, want 12", h)
	}
}
