// Package anneal implements a TimberWolf-style simulated-annealing placer
// [2,18,19,20], the paper's main wire-length comparison baseline. Cells
// live on discrete row/slot sites (so the placement is overlap-free by
// construction, like TimberWolf's row-based stages); moves displace a cell
// to an empty site or swap two cells inside a range window that shrinks
// with temperature, and the cost is the (optionally net-weighted) total
// half-perimeter wire length.
package anneal

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obsv"
)

// Effort selects the preset standing in for the published TimberWolf
// configurations.
type Effort int

const (
	// Medium reproduces the faster published run ([18]).
	Medium Effort = iota
	// High reproduces the slower, better run ([19]).
	High
)

// Config controls the annealer.
type Config struct {
	Effort Effort
	// MovesPerCell is the number of attempted moves per cell per
	// temperature (default by effort: 10 medium / 40 high... see preset).
	MovesPerCell int
	// Cooling is the temperature decay factor per stage (default by
	// effort).
	Cooling float64
	// TStopFactor ends annealing when T < TStopFactor × (mean accepted
	// uphill delta at T0) (default 1e-4).
	TStopFactor float64
	// Weighted uses net weights in the cost (timing-driven TimberWolf
	// [20]).
	Weighted bool
	// BeforeStage, when set, runs before every temperature stage; the
	// timing-driven variant updates net weights here.
	BeforeStage func(stage int, nl *netlist.Netlist)
	Seed        int64
}

func (c *Config) setDefaults() {
	if c.MovesPerCell <= 0 {
		if c.Effort == High {
			c.MovesPerCell = 24
		} else {
			c.MovesPerCell = 8
		}
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		if c.Effort == High {
			c.Cooling = 0.93
		} else {
			c.Cooling = 0.85
		}
	}
	if c.TStopFactor <= 0 {
		c.TStopFactor = 1e-4
	}
}

// Result summarizes an annealing run.
type Result struct {
	Stages   int
	Moves    int
	Accepted int
	HPWL     float64
	Runtime  time.Duration
}

// site-grid state shared by the run.
type state struct {
	nl    *netlist.Netlist
	cfg   Config
	rng   *rand.Rand
	rows  int
	cols  int
	slotW float64
	rowY  []float64
	// grid[r*cols+c] = cell index or -1.
	grid []int
	// siteOf[cell] = packed site index, -1 for fixed/unplaced.
	siteOf []int
	// cost bookkeeping
	netCost []float64 // weighted HPWL per net
	cost    float64
}

// Place anneals nl's movable cells and writes the resulting positions.
func Place(nl *netlist.Netlist, cfg Config) (Result, error) {
	cfg.setDefaults()
	start := obsv.StartTimer()
	s := newState(nl, cfg)
	res := s.run()
	res.Runtime = start.Elapsed()
	res.HPWL = nl.HPWL()
	return res, nil
}

func newState(nl *netlist.Netlist, cfg Config) *state {
	s := &state{nl: nl, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	// Site grid: rows from the region; columns sized by the average cell
	// width so total capacity comfortably exceeds the cell count.
	s.rows = len(nl.Region.Rows)
	if s.rows == 0 {
		// Floorplanning region: synthesize rows one average-cell tall.
		h := math.Sqrt(nl.AvgCellArea())
		if h <= 0 {
			h = 1
		}
		s.rows = int(nl.Region.H()/h) + 1
	}
	nMov := nl.NumMovable()
	var wSum float64
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed {
			wSum += nl.Cells[i].W
		}
	}
	avgW := wSum / float64(maxInt(nMov, 1))
	s.cols = int(nl.Region.W()/avgW) + 1
	for s.rows*s.cols < nMov {
		s.cols++
	}
	// Distribute columns evenly across the region width so every site
	// center lies inside the outline.
	s.slotW = nl.Region.W() / float64(s.cols)
	s.rowY = make([]float64, s.rows)
	if len(nl.Region.Rows) > 0 {
		for r, row := range nl.Region.Rows {
			s.rowY[r] = row.Y + row.Height/2
		}
	} else {
		rh := nl.Region.H() / float64(s.rows)
		for r := range s.rowY {
			s.rowY[r] = nl.Region.Outline.Lo.Y + (float64(r)+0.5)*rh
		}
	}

	s.grid = make([]int, s.rows*s.cols)
	for i := range s.grid {
		s.grid[i] = -1
	}
	s.siteOf = make([]int, len(nl.Cells))
	for i := range s.siteOf {
		s.siteOf[i] = -1
	}
	// Initial assignment: row-major scan in cell order (a random-ish but
	// deterministic start).
	site := 0
	for ci := range nl.Cells {
		if nl.Cells[ci].Fixed {
			continue
		}
		s.place(ci, site)
		site++
	}
	// Cost bookkeeping.
	s.netCost = make([]float64, len(nl.Nets))
	for ni := range nl.Nets {
		s.netCost[ni] = s.netHPWL(ni)
		s.cost += s.netCost[ni]
	}
	return s
}

func (s *state) sitePos(site int) geom.Point {
	r := site / s.cols
	c := site % s.cols
	// The last column can stick out when W is not a slot multiple; clamp
	// into the outline.
	return s.nl.Region.Outline.ClampPoint(geom.Point{
		X: s.nl.Region.Outline.Lo.X + (float64(c)+0.5)*s.slotW,
		Y: s.rowY[r],
	})
}

func (s *state) place(ci, site int) {
	s.grid[site] = ci
	s.siteOf[ci] = site
	s.nl.Cells[ci].Pos = s.sitePos(site)
}

func (s *state) netHPWL(ni int) float64 {
	w := 1.0
	if s.cfg.Weighted {
		w = s.nl.Nets[ni].Weight
	}
	return w * s.nl.NetHPWL(ni)
}

// run executes the cooling schedule.
func (s *state) run() Result {
	nl := s.nl
	nMov := nl.NumMovable()
	if nMov < 2 {
		return Result{}
	}
	movesPerStage := s.cfg.MovesPerCell * nMov

	// Initial temperature: sample random moves, T0 = 20×σ of deltas, the
	// standard heuristic giving a ≈high initial acceptance.
	var sum, sum2 float64
	const probes = 200
	for i := 0; i < probes; i++ {
		d := s.probeDelta()
		sum += d
		sum2 += d * d
	}
	sigma := math.Sqrt(math.Max(0, sum2/probes-(sum/probes)*(sum/probes)))
	t := 20 * sigma
	if t <= 0 {
		t = 1
	}
	tStop := s.cfg.TStopFactor * t

	// Range limiter: window spans the whole chip hot, one slot cold.
	maxWin := maxInt(s.cols, s.rows)

	var res Result
	for stage := 0; t > tStop; stage++ {
		if s.cfg.BeforeStage != nil {
			s.cfg.BeforeStage(stage, nl)
			if s.cfg.Weighted {
				s.recost()
			}
		}
		// Window shrinks with the temperature ratio (log-linear).
		frac := math.Log(t/tStop) / math.Log(20*sigma/tStop+1e-12)
		win := int(float64(maxWin) * frac)
		if win < 1 {
			win = 1
		}
		accepted := 0
		for m := 0; m < movesPerStage; m++ {
			if s.attempt(t, win) {
				accepted++
			}
		}
		res.Moves += movesPerStage
		res.Accepted += accepted
		res.Stages = stage + 1
		t *= s.cfg.Cooling
		// Early exit: a frozen stage (almost nothing accepted) ends the
		// schedule.
		if float64(accepted) < 0.002*float64(movesPerStage) {
			break
		}
	}
	return res
}

// probeDelta evaluates (and reverts) one random move, returning |Δcost|.
func (s *state) probeDelta() float64 {
	ci := s.randomCell()
	if ci < 0 {
		return 0
	}
	target := s.rng.Intn(len(s.grid))
	d := s.moveDelta(ci, target)
	return math.Abs(d)
}

func (s *state) randomCell() int {
	for tries := 0; tries < 64; tries++ {
		site := s.rng.Intn(len(s.grid))
		if s.grid[site] >= 0 {
			return s.grid[site]
		}
	}
	return -1
}

// attempt tries one Metropolis move within the window; returns accepted.
func (s *state) attempt(t float64, win int) bool {
	ci := s.randomCell()
	if ci < 0 {
		return false
	}
	site := s.siteOf[ci]
	r, c := site/s.cols, site%s.cols
	nr := clampInt(r+s.rng.Intn(2*win+1)-win, 0, s.rows-1)
	nc := clampInt(c+s.rng.Intn(2*win+1)-win, 0, s.cols-1)
	target := nr*s.cols + nc
	if target == site {
		return false
	}
	delta := s.moveDelta(ci, target)
	if delta <= 0 || s.rng.Float64() < math.Exp(-delta/t) {
		s.commitMove(ci, target)
		return true
	}
	return false
}

// moveDelta computes the cost change of moving ci to target (swapping with
// any occupant) without committing.
func (s *state) moveDelta(ci, target int) float64 {
	src := s.siteOf[ci]
	occupant := s.grid[target]
	nets := s.touchedNets(ci, occupant)

	before := 0.0
	for _, ni := range nets {
		before += s.netCost[ni]
	}
	// Tentatively move.
	s.nl.Cells[ci].Pos = s.sitePos(target)
	if occupant >= 0 {
		s.nl.Cells[occupant].Pos = s.sitePos(src)
	}
	after := 0.0
	for _, ni := range nets {
		after += s.netHPWL(ni)
	}
	// Revert.
	s.nl.Cells[ci].Pos = s.sitePos(src)
	if occupant >= 0 {
		s.nl.Cells[occupant].Pos = s.sitePos(target)
	}
	return after - before
}

func (s *state) commitMove(ci, target int) {
	src := s.siteOf[ci]
	occupant := s.grid[target]
	s.grid[src] = -1
	s.place(ci, target)
	if occupant >= 0 {
		s.place(occupant, src)
	}
	for _, ni := range s.touchedNets(ci, occupant) {
		nc := s.netHPWL(ni)
		s.cost += nc - s.netCost[ni]
		s.netCost[ni] = nc
	}
}

func (s *state) touchedNets(ci, occupant int) []int {
	idx := s.nl.CellNets()
	nets := idx[ci]
	if occupant >= 0 {
		// Merge without duplicates (small slices; linear scan is fine).
		merged := append([]int(nil), nets...)
		for _, ni := range idx[occupant] {
			dup := false
			for _, m := range merged {
				if m == ni {
					dup = true
					break
				}
			}
			if !dup {
				merged = append(merged, ni)
			}
		}
		return merged
	}
	return nets
}

// recost rebuilds the cost table after net weights changed.
func (s *state) recost() {
	s.cost = 0
	for ni := range s.nl.Nets {
		s.netCost[ni] = s.netHPWL(ni)
		s.cost += s.netCost[ni]
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
