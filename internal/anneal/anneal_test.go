package anneal

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/timing"
)

func circuit(t *testing.T, cells int, seed int64) *netlist.Netlist {
	t.Helper()
	return netgen.Generate(netgen.Config{
		Name: "a", Cells: cells, Nets: cells + cells/3, Rows: 8, Seed: seed,
	})
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	nl := circuit(t, 200, 51)
	netgen.ScatterRandom(nl, 7)
	random := nl.HPWL()
	res, err := Place(nl, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL >= random {
		t.Errorf("annealed HPWL %v not below random %v", res.HPWL, random)
	}
	if res.Stages < 5 || res.Moves == 0 {
		t.Errorf("suspicious schedule: %+v", res)
	}
}

func TestPlaceIsOverlapFreeOnSites(t *testing.T) {
	nl := circuit(t, 150, 52)
	if _, err := Place(nl, Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	seen := map[[2]float64]int{}
	for i := range nl.Cells {
		if nl.Cells[i].Fixed {
			continue
		}
		key := [2]float64{nl.Cells[i].Pos.X, nl.Cells[i].Pos.Y}
		if prev, dup := seen[key]; dup {
			t.Fatalf("cells %d and %d share site %v", prev, i, key)
		}
		seen[key] = i
		if !nl.Region.Outline.Contains(nl.Cells[i].Pos) {
			t.Fatalf("cell %d at %v outside region", i, nl.Cells[i].Pos)
		}
	}
}

func TestHighEffortBeatsMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("two full annealing runs")
	}
	run := func(e Effort) float64 {
		nl := circuit(t, 300, 53)
		res, err := Place(nl, Config{Effort: e, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	}
	med := run(Medium)
	high := run(High)
	// High effort explores far more moves; it should not be clearly worse.
	if high > med*1.05 {
		t.Errorf("high effort HPWL %v worse than medium %v", high, med)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		nl := circuit(t, 120, 54)
		res, err := Place(nl, Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWL
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestWeightedCostRespondsToWeights(t *testing.T) {
	// Heavily weight one net: the annealer should make it shorter than the
	// unweighted run does.
	pick := 3
	run := func(weighted bool) float64 {
		nl := circuit(t, 150, 55)
		if weighted {
			nl.Nets[pick].Weight = 50
		}
		if _, err := Place(nl, Config{Weighted: weighted, Seed: 4}); err != nil {
			t.Fatal(err)
		}
		return nl.NetHPWL(pick)
	}
	plain := run(false)
	weighted := run(true)
	if weighted >= plain {
		t.Errorf("weighted run net length %v not below plain %v", weighted, plain)
	}
}

func TestBeforeStageHookRuns(t *testing.T) {
	nl := circuit(t, 80, 56)
	stages := 0
	_, err := Place(nl, Config{Seed: 5, BeforeStage: func(stage int, nl *netlist.Netlist) {
		stages++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stages == 0 {
		t.Error("BeforeStage never ran")
	}
}

func TestTimingWeightedAnnealImprovesDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("two full annealing runs")
	}
	params := timing.DefaultParams()
	run := func(timed bool) float64 {
		nl := circuit(t, 250, 57)
		cfg := Config{Seed: 6, Weighted: timed}
		if timed {
			analyzer := timing.NewAnalyzer(nl, params)
			weighter := timing.NewWeighter(nl)
			cfg.BeforeStage = func(stage int, nl *netlist.Netlist) {
				weighter.Update(nl, analyzer.Analyze())
			}
		}
		if _, err := Place(nl, cfg); err != nil {
			t.Fatal(err)
		}
		return timing.NewAnalyzer(nl, params).Analyze().MaxDelay
	}
	plain := run(false)
	timed := run(true)
	if timed > plain*1.02 {
		t.Errorf("timing-weighted anneal delay %v worse than plain %v", timed, plain)
	}
}

func TestFloorplanRegionWithoutRows(t *testing.T) {
	nl := circuit(t, 100, 58)
	nl.Region.Rows = nil // row-less outline
	if _, err := Place(nl, Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed && !nl.Region.Outline.Contains(nl.Cells[i].Pos) {
			t.Fatalf("cell %d outside region", i)
		}
	}
}

func TestTinyDesign(t *testing.T) {
	nl := circuit(t, 2, 59)
	if _, err := Place(nl, Config{Seed: 8}); err != nil {
		t.Fatal(err)
	}
}
