//go:build kraftwerkcheck

package check_test

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/place"
)

// TestHealthyRunSilent drives a 2k-cell placement for a bounded number of
// transformations with the assertions armed and the default (panicking)
// OnFail in place: a healthy run must never trip one. This is the
// end-to-end soak for the invariants place.Step asserts every iteration
// (C = Cᵀ, SPD hints, finite fields, ∫D ≈ 0, finite positions).
func TestHealthyRunSilent(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 2k-cell soak in -short mode")
	}
	nl := netgen.Generate(netgen.Config{
		Name:  "healthy2k",
		Cells: 2000,
		Nets:  2400,
		Rows:  40,
		Seed:  7,
	})
	p := place.New(nl, place.Config{MaxIter: 20})
	for i := 0; i < 20; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
