//go:build kraftwerkcheck

package check_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// capture runs f with check.OnFail replaced by a recorder and returns every
// failure message delivered during f.
func capture(t *testing.T, f func()) []string {
	t.Helper()
	prev := check.OnFail
	var got []string
	check.OnFail = func(msg string) { got = append(got, msg) }
	defer func() { check.OnFail = prev }()
	f()
	return got
}

// wantFail asserts exactly one failure whose message contains substr.
func wantFail(t *testing.T, got []string, substr string) {
	t.Helper()
	if len(got) != 1 {
		t.Fatalf("got %d failures %q, want exactly 1", len(got), got)
	}
	if !strings.Contains(got[0], substr) {
		t.Fatalf("failure %q does not mention %q", got[0], substr)
	}
}

// wantSilent asserts no failure was delivered.
func wantSilent(t *testing.T, got []string) {
	t.Helper()
	if len(got) != 0 {
		t.Fatalf("unexpected failures: %q", got)
	}
}

func TestEnabled(t *testing.T) {
	if !check.Enabled {
		t.Fatal("check.Enabled = false in a kraftwerkcheck build")
	}
}

func TestSymmetric(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	b.Add(0, 1, 1) // no matching (1,0): asymmetric
	bad := b.Build()
	wantFail(t, capture(t, func() { check.Symmetric("bad", bad, 1e-12) }), "not symmetric")

	b = sparse.NewBuilder(2)
	b.AddSym(0, 1, -1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	good := b.Build()
	wantSilent(t, capture(t, func() { check.Symmetric("good", good, 1e-12) }))

	wantFail(t, capture(t, func() { check.Symmetric("nil", nil, 1e-12) }), "nil matrix")
}

func TestSPDHint(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 0, -1) // negative diagonal
	b.Add(1, 1, 2)
	negDiag := b.Build()
	wantFail(t, capture(t, func() { check.SPDHint("negdiag", negDiag, 1e-12) }), "diagonal")

	b = sparse.NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.AddSym(0, 1, -5) // off-diagonal dominates the row
	loose := b.Build()
	wantFail(t, capture(t, func() { check.SPDHint("loose", loose, 1e-12) }), "diagonally dominant")

	// A 1-D spring chain with an anchor: classic SPD placement matrix.
	b = sparse.NewBuilder(3)
	for i := 0; i < 3; i++ {
		b.Add(i, i, 2.5) // 2 from neighbours + 0.5 anchor
	}
	b.AddSym(0, 1, -1)
	b.AddSym(1, 2, -1)
	good := b.Build()
	wantSilent(t, capture(t, func() { check.SPDHint("good", good, 1e-12) }))
}

func TestFinite(t *testing.T) {
	wantFail(t, capture(t, func() { check.Finite("nan", []float64{0, math.NaN(), 1}) }), "element 1")
	wantFail(t, capture(t, func() { check.Finite("inf", []float64{math.Inf(-1)}) }), "element 0")
	wantSilent(t, capture(t, func() { check.Finite("ok", []float64{-1e300, 0, 1e300}) }))
	wantSilent(t, capture(t, func() { check.Finite("empty", nil) }))
}

func TestDensityBalanced(t *testing.T) {
	region := geom.NewRect(0, 0, 4, 4)
	g := density.NewGrid(region, 2, 2)
	g.Demand[0] = 1
	g.D[0] = 1 // ∫D = 1 against total demand 1: badly unbalanced
	wantFail(t, capture(t, func() { check.DensityBalanced("bad", g, 1e-6) }), "∫D")

	g = density.NewGrid(region, 2, 2)
	g.Demand[0] = 1
	g.D[0] = 0.5
	g.D[1] = -0.5 // cancels exactly
	wantSilent(t, capture(t, func() { check.DensityBalanced("good", g, 1e-6) }))

	// Empty design: zero demand is legal and D is identically zero.
	g = density.NewGrid(region, 2, 2)
	wantSilent(t, capture(t, func() { check.DensityBalanced("empty", g, 1e-6) }))

	wantFail(t, capture(t, func() { check.DensityBalanced("nil", nil, 1e-6) }), "nil grid")
}

func TestCellsFinite(t *testing.T) {
	nl := &netlist.Netlist{Cells: []netlist.Cell{
		{Pos: geom.Point{X: 1, Y: 2}},
		{Pos: geom.Point{X: math.NaN(), Y: 0}},
	}}
	wantFail(t, capture(t, func() { check.CellsFinite("bad", nl) }), "cell 1")

	nl.Cells[1].Pos = geom.Point{X: 3, Y: 4}
	wantSilent(t, capture(t, func() { check.CellsFinite("good", nl) }))

	wantFail(t, capture(t, func() { check.CellsFinite("nil", nil) }), "nil netlist")
}
