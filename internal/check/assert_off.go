//go:build !kraftwerkcheck

package check

import (
	"repro/internal/density"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// Enabled reports whether this build carries the kraftwerkcheck tag; in
// this build every assertion below is an inlineable no-op.
const Enabled = false

// Symmetric is a no-op without the kraftwerkcheck tag.
func Symmetric(name string, m *sparse.CSR, tol float64) {}

// SPDHint is a no-op without the kraftwerkcheck tag.
func SPDHint(name string, m *sparse.CSR, tol float64) {}

// Finite is a no-op without the kraftwerkcheck tag.
func Finite(name string, xs []float64) {}

// DensityBalanced is a no-op without the kraftwerkcheck tag.
func DensityBalanced(name string, g *density.Grid, tol float64) {}

// CellsFinite is a no-op without the kraftwerkcheck tag.
func CellsFinite(name string, nl *netlist.Netlist) {}
