//go:build !kraftwerkcheck

package check_test

import (
	"testing"

	"repro/internal/check"
)

// TestDisabledNoOps verifies the untagged build: Enabled is false and every
// assertion is a no-op that tolerates even nil arguments without reaching
// OnFail.
func TestDisabledNoOps(t *testing.T) {
	if check.Enabled {
		t.Fatal("check.Enabled = true without the kraftwerkcheck tag")
	}
	prev := check.OnFail
	check.OnFail = func(msg string) { t.Fatalf("assertion fired in untagged build: %s", msg) }
	defer func() { check.OnFail = prev }()

	check.Symmetric("s", nil, 0)
	check.SPDHint("p", nil, 0)
	check.Finite("f", nil)
	check.DensityBalanced("d", nil, 0)
	check.CellsFinite("c", nil)
}
