//go:build kraftwerkcheck

package check

import (
	"math"

	"repro/internal/density"
	"repro/internal/netlist"
	"repro/internal/sparse"
)

// Enabled reports whether this build carries the kraftwerkcheck tag and
// the assertions below are live.
const Enabled = true

// Symmetric asserts m is symmetric within tol: the quadratic form
// Φ = ½·pᵀCp + dᵀp + const only has C as its Hessian when C = Cᵀ, and CG
// silently produces garbage on asymmetric systems.
func Symmetric(name string, m *sparse.CSR, tol float64) {
	if m == nil {
		failf("%s: nil matrix", name)
		return
	}
	if !m.IsSymmetric(tol) {
		failf("%s: matrix is not symmetric within %g", name, tol)
	}
}

// SPDHint asserts the cheap sufficient conditions for positive
// definiteness that the spring assembly guarantees: every diagonal entry
// strictly positive and every row weakly diagonally dominant (Gershgorin
// then puts all eigenvalues in the right half plane). A violation means
// a net weight went negative or an anchor vanished.
func SPDHint(name string, m *sparse.CSR, tol float64) {
	if m == nil {
		failf("%s: nil matrix", name)
		return
	}
	for i, d := range m.Diag() {
		if !(d > 0) {
			failf("%s: diagonal entry %d is %g, want > 0", name, i, d)
			return
		}
	}
	if !m.RowDiagonallyDominant(tol) {
		failf("%s: matrix is not row diagonally dominant within %g", name, tol)
	}
}

// Finite asserts no element of xs is NaN or ±Inf. The FFT field solve is
// the usual source: one NaN in the density map poisons every force.
func Finite(name string, xs []float64) {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			failf("%s: element %d is %g", name, i, v)
			return
		}
	}
}

// DensityBalanced asserts the grid's supply/demand bookkeeping: ∫D must
// vanish (the supply scaling enforces it) or the Poisson solve acquires a
// spurious uniform charge. The tolerance is relative to total demand.
func DensityBalanced(name string, g *density.Grid, tol float64) {
	if g == nil {
		failf("%s: nil grid", name)
		return
	}
	var demand float64
	for _, d := range g.Demand {
		demand += d
	}
	if demand == 0 {
		return // empty design: D is identically zero
	}
	if imbalance := math.Abs(g.TotalD()); imbalance > tol*demand {
		failf("%s: ∫D = %g exceeds %g of total demand %g", name, imbalance, tol, demand)
	}
}

// CellsFinite asserts every cell position is a finite point; a NaN
// position silently absorbs a cell into the void on the next gather.
func CellsFinite(name string, nl *netlist.Netlist) {
	if nl == nil {
		failf("%s: nil netlist", name)
		return
	}
	for ci := range nl.Cells {
		p := nl.Cells[ci].Pos
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			failf("%s: cell %d at (%g, %g)", name, ci, p.X, p.Y)
			return
		}
	}
}
