// Package check is the runtime half of the correctness tooling: cheap
// spot-check assertions over the numeric invariants the placement engine
// relies on (matrix symmetry and positive-definiteness hints, density
// supply/demand balance, NaN/Inf field scans). The assertions compile to
// no-ops unless the build carries the kraftwerkcheck tag:
//
//	go test -tags kraftwerkcheck ./...
//	go build -tags kraftwerkcheck ./cmd/kplace
//
// so production binaries pay nothing while a checked build validates every
// iteration. Static analysis (cmd/kvet) and these dynamic assertions cover
// each other: kvet proves structural discipline (determinism, parallelism
// policy), check catches the numeric failures no syntax can express.
package check

import "fmt"

// OnFail receives every assertion failure message. The default panics;
// tests replace it to record and continue. Only a kraftwerkcheck build
// ever calls it.
var OnFail = func(msg string) { panic("check: " + msg) }

// failf formats and delivers one assertion failure.
func failf(format string, args ...any) { OnFail(fmt.Sprintf(format, args...)) }
