// Package visual renders placements and scalar maps as ASCII art for the
// example programs and CLI tools.
package visual

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/netlist"
)

// Plot renders the placement as a width×height character grid: digits give
// the cell count per character cell (capped at 9), '#' marks macro blocks,
// '*' fixed cells, '.' empty space.
func Plot(w io.Writer, nl *netlist.Netlist, width, height int) {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	out := nl.Region.Outline
	counts := make([]int, width*height)
	blocks := make([]bool, width*height)
	pads := make([]bool, width*height)

	rowH := 1.0
	if len(nl.Region.Rows) > 0 {
		rowH = nl.Region.Rows[0].Height
	}
	at := func(x, y float64) (int, int, bool) {
		ix := int((x - out.Lo.X) / out.W() * float64(width))
		iy := int((y - out.Lo.Y) / out.H() * float64(height))
		if ix < 0 || ix >= width || iy < 0 || iy >= height {
			return 0, 0, false
		}
		return ix, iy, true
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		ix, iy, ok := at(c.Pos.X, c.Pos.Y)
		if !ok {
			continue
		}
		switch {
		case c.Fixed:
			pads[iy*width+ix] = true
		case c.H > 1.5*rowH:
			// Mark the whole block footprint.
			r := c.Rect()
			x0, y0, ok0 := at(r.Lo.X, r.Lo.Y)
			x1, y1, ok1 := at(r.Hi.X-1e-9, r.Hi.Y-1e-9)
			if ok0 && ok1 {
				for yy := y0; yy <= y1; yy++ {
					for xx := x0; xx <= x1; xx++ {
						blocks[yy*width+xx] = true
					}
				}
			}
		default:
			counts[iy*width+ix]++
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for iy := height - 1; iy >= 0; iy-- {
		b.WriteString("|")
		for ix := 0; ix < width; ix++ {
			i := iy*width + ix
			switch {
			case blocks[i]:
				b.WriteByte('#')
			case pads[i]:
				b.WriteByte('*')
			case counts[i] == 0:
				b.WriteByte('.')
			case counts[i] > 9:
				b.WriteByte('9')
			default:
				b.WriteByte(byte('0' + counts[i]))
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	fmt.Fprint(w, b.String())
}

// Heat renders a scalar field (row-major nx×ny, origin bottom-left) with a
// density ramp.
func Heat(w io.Writer, data []float64, nx, ny int) {
	ramp := []byte(" .:-=+*#%@")
	var max float64
	for _, v := range data {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", nx) + "+\n")
	for iy := ny - 1; iy >= 0; iy-- {
		b.WriteString("|")
		for ix := 0; ix < nx; ix++ {
			v := data[iy*nx+ix]
			k := 0
			if max > 0 {
				k = int(v / max * float64(len(ramp)-1))
			}
			if k < 0 {
				k = 0
			}
			if k >= len(ramp) {
				k = len(ramp) - 1
			}
			b.WriteByte(ramp[k])
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", nx) + "+\n")
	fmt.Fprint(w, b.String())
}
