package visual

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func demo(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("v", geom.NewRegion(8, 1, 32))
	b.AddPad("p", geom.Point{X: 0, Y: 4})
	b.AddCell("a", 1, 1)
	b.AddBlock("blk", 8, 4)
	b.Connect("n", "p", "a", "blk")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells[1].Pos = geom.Point{X: 4, Y: 1}
	nl.Cells[2].Pos = geom.Point{X: 20, Y: 6}
	return nl
}

func TestPlotMarksEverything(t *testing.T) {
	nl := demo(t)
	var sb strings.Builder
	Plot(&sb, nl, 32, 8)
	out := sb.String()
	if !strings.Contains(out, "*") {
		t.Error("pad marker missing")
	}
	if !strings.Contains(out, "#") {
		t.Error("block marker missing")
	}
	if !strings.Contains(out, "1") {
		t.Error("cell count missing")
	}
	if lines := strings.Count(out, "\n"); lines != 10 { // 8 rows + 2 borders
		t.Errorf("plot has %d lines", lines)
	}
}

func TestPlotClampsTinySizes(t *testing.T) {
	nl := demo(t)
	var sb strings.Builder
	Plot(&sb, nl, 1, 1) // clamped to minimum 8x4
	if !strings.Contains(sb.String(), "+--------+") {
		t.Error("minimum width not enforced")
	}
}

func TestPlotCapsCountsAtNine(t *testing.T) {
	b := netlist.NewBuilder("many", geom.NewRegion(4, 1, 16))
	names := make([]string, 30)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		b.AddCell(names[i], 0.1, 0.1)
	}
	b.Connect("n", names...)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		nl.Cells[i].Pos = geom.Point{X: 8, Y: 2}
	}
	var sb strings.Builder
	Plot(&sb, nl, 16, 4)
	if !strings.Contains(sb.String(), "9") {
		t.Error("count cap marker missing")
	}
}

func TestHeatRamp(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	var sb strings.Builder
	Heat(&sb, data, 4, 2)
	out := sb.String()
	if !strings.Contains(out, "@") {
		t.Error("peak marker missing")
	}
	if !strings.Contains(out, " ") {
		t.Error("zero marker missing")
	}
	// Row order: top line shows the higher-index row.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || !strings.Contains(lines[1], "@") {
		t.Errorf("top row should hold the peak: %q", out)
	}
}

func TestHeatAllZeros(t *testing.T) {
	var sb strings.Builder
	Heat(&sb, make([]float64, 8), 4, 2)
	if strings.Contains(sb.String(), "@") {
		t.Error("zero field rendered hot")
	}
}
